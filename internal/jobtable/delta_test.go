package jobtable

import (
	"testing"
	"time"
)

// An idle Refresh — no pending edits, no decay possible — returns the
// cached snapshot without republishing: same generation, same slice
// pointer, no allocation.
func TestRefreshIdleReturnsCachedSnapshot(t *testing.T) {
	tb := New("s1", time.Second)
	tb.Observe(info("a", 4), 0)
	tb.Observe(info("b", 2), 10*time.Millisecond)
	gen := tb.Refresh(20 * time.Millisecond)
	before := tb.ActiveSnapshot()
	for i := 1; i <= 5; i++ {
		if g := tb.Refresh(20*time.Millisecond + time.Duration(i)*50*time.Millisecond); g != gen {
			t.Fatalf("idle refresh %d moved generation to %d (was %d)", i, g, gen)
		}
	}
	after := tb.ActiveSnapshot()
	if before != after {
		t.Fatal("idle refreshes must return the cached snapshot, not reallocate")
	}
	allocs := testing.AllocsPerRun(100, func() { tb.Refresh(30 * time.Millisecond) })
	if allocs != 0 {
		t.Fatalf("idle refresh allocated %.1f times per run, want 0", allocs)
	}
}

// DeltaSince bridges the generation the consumer compiled against to
// the current one, squashed to at most one mention per job.
func TestDeltaSince(t *testing.T) {
	tb := New("s1", time.Second)
	tb.Observe(info("a", 4), 0)
	g1 := tb.Generation()
	if d, ok := tb.DeltaSince(g1); !ok || !d.Empty() {
		t.Fatalf("up-to-date consumer: got %+v/%v, want empty/true", d, ok)
	}

	tb.Observe(info("b", 2), 10*time.Millisecond) // gen+1: add b
	tb.Observe(info("b", 8), 20*time.Millisecond) // gen+2: update b (nodes)
	tb.Observe(info("c", 1), 30*time.Millisecond) // gen+3: add c
	tb.Remove("c")
	tb.Refresh(40 * time.Millisecond) // gen+4: remove c
	tb.Observe(info("a", 16), 50*time.Millisecond)

	d, ok := tb.DeltaSince(g1)
	if !ok {
		t.Fatal("ring should bridge 5 generations")
	}
	if len(d.Added) != 1 || d.Added[0].JobID != "b" || d.Added[0].Nodes != 8 {
		t.Fatalf("Added = %+v, want just b with its latest attrs", d.Added)
	}
	if len(d.Updated) != 1 || d.Updated[0].JobID != "a" || d.Updated[0].Nodes != 16 {
		t.Fatalf("Updated = %+v, want just a@16", d.Updated)
	}
	if len(d.Removed) != 0 {
		t.Fatalf("Removed = %v; c arrived and left inside the window, must cancel", d.Removed)
	}

	if _, ok := tb.DeltaSince(tb.Generation() + 3); ok {
		t.Fatal("future generation must report not-bridgeable")
	}
}

// A consumer further behind than the ring retains gets (Delta, false)
// and must full-compile.
func TestDeltaSinceRingEviction(t *testing.T) {
	tb := New("s1", time.Second)
	tb.Observe(info("a", 4), 0)
	g := tb.Generation()
	for i := 0; i < deltaRing+2; i++ {
		tb.Observe(info("a", 5+i), time.Duration(i+1)*time.Millisecond)
	}
	if _, ok := tb.DeltaSince(g); ok {
		t.Fatalf("consumer %d generations behind must fall back to full compile", deltaRing+2)
	}
	// One generation behind is always bridgeable.
	if d, ok := tb.DeltaSince(tb.Generation() - 1); !ok || len(d.Updated) != 1 {
		t.Fatalf("one-behind: got %+v/%v", d, ok)
	}
}

// The incremental publish path and the decay-triggered full rebuild
// agree: deltas produced either way replay to the published snapshot.
func TestDeltaCoversDecay(t *testing.T) {
	tb := New("s1", time.Second)
	tb.Observe(info("a", 4), 0)
	tb.Observe(info("b", 2), 10*time.Millisecond)
	g := tb.Refresh(20 * time.Millisecond)
	// a's heartbeat ages out; b stays fresh via heartbeat.
	tb.Heartbeat(info("b", 2), 900*time.Millisecond)
	gen := tb.Refresh(1500 * time.Millisecond)
	if gen == g {
		t.Fatal("decay of a should have republished")
	}
	d, ok := tb.DeltaSince(g)
	if !ok || len(d.Removed) != 1 || d.Removed[0] != "a" {
		t.Fatalf("delta = %+v/%v, want removal of a", d, ok)
	}
	if jobs := tb.ActiveSnapshot().Jobs; len(jobs) != 1 || jobs[0].JobID != "b" {
		t.Fatalf("snapshot = %+v, want just b", jobs)
	}
}

// Lookup resolves a job in the published snapshot by binary search.
func TestActiveSetLookup(t *testing.T) {
	tb := New("s1", time.Second)
	tb.Observe(info("a", 4), 0)
	tb.Observe(info("c", 2), 0)
	snap := tb.ActiveSnapshot()
	if j, ok := snap.Lookup("c"); !ok || j.Nodes != 2 {
		t.Fatalf("Lookup(c) = %+v/%v", j, ok)
	}
	if _, ok := snap.Lookup("b"); ok {
		t.Fatal("Lookup of an absent job must miss")
	}
	var nilSet *ActiveSet
	if _, ok := nilSet.Lookup("a"); ok {
		t.Fatal("nil snapshot must miss")
	}
}
