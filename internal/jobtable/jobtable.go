// Package jobtable implements the job status table maintained by each
// ThemisIO server's job monitor (§4.1) and the table synchronization used
// for λ-delayed global fairness (§3.1).
//
// Each server tracks the jobs it has heard from — via heartbeats or via
// job metadata embedded in I/O requests — and marks a job inactive when no
// heartbeat arrives for a configurable timeout. Every λ interval the
// controllers exchange their tables (an all-gather originally; an
// epidemic push-pull gossip since internal/cluster) so that every server
// converges on the global set of active jobs; a globally unfair token
// assignment therefore lasts a small multiple of λ. Each entry also
// records the set of servers
// where the job is I/O-active; a job present on k servers is deweighted by
// 1/k on each (Figure 5's token-count reconciliation), so that its
// aggregate share across the cluster matches the policy.
package jobtable

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"themisio/internal/policy"
)

// Delta is the job-set change between two published generations, in the
// form the policy compiler's incremental entry point consumes.
type Delta = policy.Delta

// Status of a job as seen by one server.
type Status int

const (
	// Active means a heartbeat arrived within the timeout window.
	Active Status = iota
	// Inactive means the job has gone silent; its tokens are reclaimed.
	Inactive
)

// String returns "active" or "inactive".
func (s Status) String() string {
	if s == Active {
		return "active"
	}
	return "inactive"
}

// Entry is one row of the job status table.
type Entry struct {
	Info policy.JobInfo
	// Last is the time of the most recent heartbeat (or embedded-metadata
	// sighting) for the job, in the owning clock's domain.
	Last time.Duration
	// Servers is the set of server ids on which the job has been observed
	// doing I/O. Populated locally by Observe and unioned during Merge.
	Servers map[string]bool
	// Demand counts I/O requests observed from the job since creation;
	// used only for reporting.
	Demand int64
}

func (e *Entry) clone() Entry {
	cp := *e
	cp.Servers = make(map[string]bool, len(e.Servers))
	for s := range e.Servers {
		cp.Servers[s] = true
	}
	return cp
}

// ActiveSet is an immutable snapshot of the active job set. It is
// published atomically by the table so that readers on the request hot
// path (the server controller, scheduler epochs) never take the table
// lock and never allocate; Gen increases by one every time the
// membership — or any policy-relevant job attribute — of the active set
// actually changes.
type ActiveSet struct {
	Gen  uint64
	Jobs []policy.JobInfo
}

// Lookup returns the snapshot's info for the job, resolved by binary
// search over the sorted Jobs slice — the ledger's lazy materialiser,
// so a λ roll never walks the full set.
func (s *ActiveSet) Lookup(job string) (policy.JobInfo, bool) {
	if s == nil {
		return policy.JobInfo{}, false
	}
	i := sort.Search(len(s.Jobs), func(i int) bool { return s.Jobs[i].JobID >= job })
	if i < len(s.Jobs) && s.Jobs[i].JobID == job {
		return s.Jobs[i], true
	}
	return policy.JobInfo{}, false
}

// Table is a thread-safe job status table. Time is expressed as
// time.Duration offsets from an arbitrary epoch so the table works
// identically under the discrete-event simulator's virtual clock and the
// live server's wall clock.
type Table struct {
	mu      sync.RWMutex
	owner   string
	entries map[string]*Entry
	timeout time.Duration

	// gen and active publish the epoch snapshot: writers that change the
	// active membership republish under mu; readers load the pointer with
	// no lock. gen moves only when the published snapshot really differs,
	// so a controller can gate recompilation on Generation() alone.
	gen    atomic.Uint64
	active atomic.Pointer[ActiveSet]

	// pending/dirty accumulate the job ids touched since the last
	// publish so a republish patches the snapshot incrementally
	// (O(pending·log n) merge against the published slice) instead of
	// re-sorting all entries; minLast conservatively lower-bounds the
	// heartbeat of any published job, so an idle Refresh proves "no
	// decay possible" in O(1) and returns the cached snapshot. deltas
	// is a ring of the last published generation transitions, serving
	// DeltaSince for the scheduler's incremental recompile.
	pending map[string]struct{}
	dirty   bool
	minLast time.Duration
	deltas  []genDelta
}

// genDelta records the change that produced generation gen from gen-1.
type genDelta struct {
	gen uint64
	d   Delta
}

// deltaRing bounds the generations DeltaSince can bridge; a consumer
// further behind gets (Delta, false) and full-compiles. The controller
// reads every λ, so 8 generations of slack is plenty.
const deltaRing = 8

// DefaultTimeout is the heartbeat expiry used when none is configured;
// the paper uses "a predefined period of time", and production heartbeat
// periods are O(seconds).
const DefaultTimeout = 5 * time.Second

// New returns an empty table owned by the named server, with the given
// heartbeat timeout. A non-positive timeout selects DefaultTimeout.
func New(owner string, timeout time.Duration) *Table {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	t := &Table{
		owner:   owner,
		entries: make(map[string]*Entry),
		timeout: timeout,
		pending: make(map[string]struct{}),
		minLast: time.Duration(math.MaxInt64),
	}
	t.active.Store(&ActiveSet{})
	return t
}

// Owner returns the server id that owns this table.
func (t *Table) Owner() string { return t.owner }

// Timeout returns the heartbeat expiry window.
func (t *Table) Timeout() time.Duration { return t.timeout }

// Heartbeat records a liveness sighting of the job at time now, inserting
// the job if it is new. Heartbeats assert liveness but not I/O activity on
// this server, so they do not extend Servers. Returns true if the active
// job set changed (new job, or stale job revived).
func (t *Table) Heartbeat(info policy.JobInfo, now time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := t.touch(info, now, false)
	if changed {
		t.notePendingLocked(info.JobID, now)
		t.republishLocked(now)
	}
	return changed
}

// Observe records that an I/O request from the job arrived at time now on
// this server. Embedded job metadata counts as a liveness signal, exactly
// as in the paper where servers learn job state "purely based on real-time
// I/O behavior". Returns true if the active set changed.
func (t *Table) Observe(info policy.JobInfo, now time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := t.touch(info, now, true)
	t.entries[info.JobID].Demand++
	if changed {
		t.notePendingLocked(info.JobID, now)
		t.republishLocked(now)
	}
	return changed
}

// notePendingLocked marks the job id as touched since the last publish
// and folds its heartbeat into the conservative minLast bound (only
// active entries matter: an inactive one is not in the published set,
// so it cannot decay out of it).
func (t *Table) notePendingLocked(id string, now time.Duration) {
	t.pending[id] = struct{}{}
	t.dirty = true
	if e, ok := t.entries[id]; ok && now-e.Last <= t.timeout && e.Last < t.minLast {
		t.minLast = e.Last
	}
}

// touch implements Heartbeat/Observe under t.mu.
func (t *Table) touch(info policy.JobInfo, now time.Duration, io bool) bool {
	e, ok := t.entries[info.JobID]
	if !ok {
		e = &Entry{Info: info, Last: now, Servers: map[string]bool{}}
		if io {
			e.Servers[t.owner] = true
		}
		t.entries[info.JobID] = e
		return true
	}
	changed := now-e.Last > t.timeout // stale → active counts as a change
	next := info
	next.Presence = e.Info.Presence // presence is derived, not client-supplied
	if e.Info != next {
		changed = true // policy-relevant metadata moved (nodes, user, …)
	}
	e.Info = next
	if now > e.Last {
		e.Last = now
	}
	if io && !e.Servers[t.owner] {
		e.Servers[t.owner] = true
		changed = true
	}
	return changed
}

// Active returns the jobs whose last heartbeat is within the timeout as of
// now, sorted by JobID, with Presence set to the size of each job's
// observed server set (minimum 1).
func (t *Table) Active(now time.Duration) []policy.JobInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.activeLocked(now)
}

// activeLocked computes the active job list under t.mu (either mode).
func (t *Table) activeLocked(now time.Duration) []policy.JobInfo {
	jobs, _ := t.activeAndMinLocked(now)
	return jobs
}

// activeAndMinLocked is the full O(n log n) rebuild, also returning the
// exact minimum heartbeat among active entries (MaxInt64 if none).
func (t *Table) activeAndMinLocked(now time.Duration) ([]policy.JobInfo, time.Duration) {
	var out []policy.JobInfo
	min := time.Duration(math.MaxInt64)
	for _, e := range t.entries {
		if now-e.Last <= t.timeout {
			info := e.Info
			info.Presence = len(e.Servers)
			if info.Presence < 1 {
				info.Presence = 1
			}
			out = append(out, info)
			if e.Last < min {
				min = e.Last
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out, min
}

// republishLocked folds the accumulated pending edits into a new
// snapshot — bumping the generation and recording the delta — only if
// the published set really changes. When minLast proves no published
// job can have decayed, the new sorted slice is produced by a single
// merge of the pending ids against the current snapshot (O(pending·
// log n + n) with no map walk and no sort); otherwise — decay possible,
// or bootstrap — it falls back to the full rebuild and diffs the two
// sorted slices. Callers hold t.mu for writing.
func (t *Table) republishLocked(now time.Duration) uint64 {
	cur := t.active.Load()
	var jobs []policy.JobInfo
	var d Delta
	if now-t.minLast <= t.timeout {
		jobs, d = t.applyPendingLocked(cur.Jobs, now)
	} else {
		jobs, t.minLast = t.activeAndMinLocked(now)
		d = diffJobs(cur.Jobs, jobs)
	}
	t.dirty = false
	clear(t.pending)
	if d.Empty() {
		return cur.Gen
	}
	gen := t.gen.Add(1)
	t.active.Store(&ActiveSet{Gen: gen, Jobs: jobs})
	if len(t.deltas) == deltaRing {
		copy(t.deltas, t.deltas[1:])
		t.deltas = t.deltas[:deltaRing-1]
	}
	t.deltas = append(t.deltas, genDelta{gen: gen, d: d})
	return gen
}

// applyPendingLocked merges the pending job ids into the published
// sorted slice, producing the next snapshot and its delta. Only valid
// when no non-pending member can have decayed (minLast-guarded by the
// caller).
func (t *Table) applyPendingLocked(curJobs []policy.JobInfo, now time.Duration) ([]policy.JobInfo, Delta) {
	ids := make([]string, 0, len(t.pending))
	for id := range t.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]policy.JobInfo, 0, len(curJobs)+len(ids))
	var d Delta
	i := 0
	for _, id := range ids {
		for i < len(curJobs) && curJobs[i].JobID < id {
			out = append(out, curJobs[i])
			i++
		}
		var old policy.JobInfo
		had := i < len(curJobs) && curJobs[i].JobID == id
		if had {
			old = curJobs[i]
			i++
		}
		e, ok := t.entries[id]
		if ok && now-e.Last <= t.timeout {
			in := e.Info
			in.Presence = len(e.Servers)
			if in.Presence < 1 {
				in.Presence = 1
			}
			out = append(out, in)
			switch {
			case !had:
				d.Added = append(d.Added, in)
			case in != old:
				d.Updated = append(d.Updated, in)
			}
		} else if had {
			d.Removed = append(d.Removed, id)
		}
	}
	out = append(out, curJobs[i:]...)
	return out, d
}

// diffJobs computes the delta between two sorted job slices.
func diffJobs(old, new []policy.JobInfo) Delta {
	var d Delta
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch {
		case old[i].JobID == new[j].JobID:
			if old[i] != new[j] {
				d.Updated = append(d.Updated, new[j])
			}
			i++
			j++
		case old[i].JobID < new[j].JobID:
			d.Removed = append(d.Removed, old[i].JobID)
			i++
		default:
			d.Added = append(d.Added, new[j])
			j++
		}
	}
	for ; i < len(old); i++ {
		d.Removed = append(d.Removed, old[i].JobID)
	}
	for ; j < len(new); j++ {
		d.Added = append(d.Added, new[j])
	}
	return d
}

// Generation returns the published snapshot's generation without taking
// the table lock. A controller that caches the last generation it
// compiled against can skip recompilation entirely while it is unchanged.
func (t *Table) Generation() uint64 { return t.gen.Load() }

// ActiveSnapshot returns the current immutable active-set snapshot. The
// returned value — including its Jobs slice — must not be mutated.
func (t *Table) ActiveSnapshot() *ActiveSet { return t.active.Load() }

// Refresh recomputes the active set as of now and republishes the
// snapshot if membership decayed (heartbeats aged past the timeout) or a
// clockless mutation (DropServer, Remove) changed it. It returns the
// current generation. The controller calls this once per λ; activeness
// is a function of time, so pure decay is otherwise invisible to the
// write-triggered republishes.
//
// The idle pass is O(1): with no pending edits and minLast proving no
// published job can have aged out, Refresh returns the cached
// snapshot's generation without allocating or walking the entries.
func (t *Table) Refresh(now time.Duration) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.dirty && now-t.minLast <= t.timeout {
		return t.active.Load().Gen
	}
	return t.republishLocked(now)
}

// DeltaSince returns the squashed job-set change from generation g to
// the current one, and whether the delta ring could bridge the gap. A
// false return (consumer too far behind, or g from the future) means
// the caller must fall back to a full recompile from ActiveSnapshot.
// The returned delta aliases ring storage and must not be mutated.
func (t *Table) DeltaSince(g uint64) (Delta, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.gen.Load()
	if g == cur {
		return Delta{}, true
	}
	if g > cur || len(t.deltas) == 0 || t.deltas[0].gen > g+1 {
		return Delta{}, false
	}
	start := int(g + 1 - t.deltas[0].gen)
	if start == len(t.deltas)-1 {
		return t.deltas[start].d, true
	}
	return squashDeltas(t.deltas[start:]), true
}

// squashDeltas folds a contiguous run of generation deltas into one
// well-formed delta (each job in at most one list): add∘remove cancels,
// update∘add stays an add, add∘remove-then-re-add nets to an update.
func squashDeltas(ds []genDelta) Delta {
	const (
		opAdded = iota
		opUpdated
		opRemoved
	)
	type state struct {
		op   int
		info policy.JobInfo
	}
	m := make(map[string]*state)
	apply := func(id string, op int, info policy.JobInfo) {
		s, ok := m[id]
		if !ok {
			m[id] = &state{op: op, info: info}
			return
		}
		switch {
		case op == opRemoved && s.op == opAdded:
			delete(m, id) // arrived and left within the window: net nothing
		case op == opRemoved:
			s.op = opRemoved
		case s.op == opAdded:
			s.info = info // still net-new; keep the freshest attributes
		case s.op == opRemoved:
			s.op, s.info = opUpdated, info // left and came back: net attr change
		default:
			s.info = info
		}
	}
	for _, gd := range ds {
		for _, j := range gd.d.Added {
			apply(j.JobID, opAdded, j)
		}
		for _, j := range gd.d.Updated {
			apply(j.JobID, opUpdated, j)
		}
		for _, id := range gd.d.Removed {
			apply(id, opRemoved, policy.JobInfo{})
		}
	}
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var d Delta
	for _, id := range ids {
		switch s := m[id]; s.op {
		case opAdded:
			d.Added = append(d.Added, s.info)
		case opUpdated:
			d.Updated = append(d.Updated, s.info)
		default:
			d.Removed = append(d.Removed, id)
		}
	}
	return d
}

// StatusOf returns the job's status as of now and whether it is known.
func (t *Table) StatusOf(jobID string, now time.Duration) (Status, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.entries[jobID]
	if !ok {
		return Inactive, false
	}
	if now-e.Last <= t.timeout {
		return Active, true
	}
	return Inactive, true
}

// Expire removes entries whose heartbeat age exceeds keep (defaulting to
// 4× the timeout when keep <= 0) and returns the number removed. The live
// server destroys the expired jobs' connection mappings when this fires
// (§4.2).
func (t *Table) Expire(now, keep time.Duration) int {
	if keep <= 0 {
		keep = 4 * t.timeout
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, e := range t.entries {
		if now-e.Last > keep {
			delete(t.entries, id)
			t.pending[id] = struct{}{}
			t.dirty = true
			n++
		}
	}
	t.republishLocked(now)
	return n
}

// Remove deletes the job outright (client notified exit, §4.2). The
// published snapshot is not touched here (no clock); the id is marked
// pending so the next Refresh folds the departure in.
func (t *Table) Remove(jobID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, jobID)
	t.pending[jobID] = struct{}{}
	t.dirty = true
}

// Len returns the number of entries (active or not).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Snapshot returns a deep copy of all entries, sorted by JobID. This is
// what a controller sends to its peers during the λ all-gather.
func (t *Table) Snapshot() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.JobID < out[j].Info.JobID })
	return out
}

// Merge folds a peer snapshot into the table: new jobs are learned,
// fresher heartbeats win, and server sets are unioned (the token-count
// addition of Figure 5). Returns true if the active set or any presence
// changed as of now.
func (t *Table) Merge(snap []Entry, now time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := false
	for i := range snap {
		in := &snap[i]
		e, ok := t.entries[in.Info.JobID]
		entryChanged := false
		if !ok {
			cp := in.clone()
			t.entries[in.Info.JobID] = &cp
			entryChanged = true
		} else {
			if in.Last > e.Last {
				wasStale := now-e.Last > t.timeout
				e.Last = in.Last
				if wasStale && now-e.Last <= t.timeout {
					entryChanged = true
				}
			}
			for s := range in.Servers {
				if !e.Servers[s] {
					e.Servers[s] = true
					entryChanged = true
				}
			}
			if in.Demand > e.Demand {
				e.Demand = in.Demand
			}
		}
		if entryChanged {
			t.notePendingLocked(in.Info.JobID, now)
			changed = true
		}
	}
	if changed {
		t.republishLocked(now)
	}
	return changed
}

// DropServer removes a server from every entry's observed-server set —
// the failover path: when the cluster fabric declares a member failed,
// each job that was present on it sheds that presence, so the 1/k token
// deweighting (Figure 5) shifts the job's share onto the survivors.
// Returns true if any entry changed. DropServer has no clock, so the
// published snapshot is not touched here; the next Refresh (the
// controller's λ tick) folds the presence change into a new generation.
func (t *Table) DropServer(server string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := false
	for id, e := range t.entries {
		if e.Servers[server] {
			delete(e.Servers, server)
			t.pending[id] = struct{}{}
			t.dirty = true
			changed = true
		}
	}
	return changed
}

// AllGather performs the λ-interval synchronization across a set of
// tables: every table merges every other table's snapshot. After the call
// all tables agree on the global active job set and per-job presence.
func AllGather(tables []*Table, now time.Duration) {
	snaps := make([][]Entry, len(tables))
	for i, t := range tables {
		snaps[i] = t.Snapshot()
	}
	for i, t := range tables {
		for j, snap := range snaps {
			if i == j {
				continue
			}
			t.Merge(snap, now)
		}
	}
}
