// Package jobtable implements the job status table maintained by each
// ThemisIO server's job monitor (§4.1) and the table synchronization used
// for λ-delayed global fairness (§3.1).
//
// Each server tracks the jobs it has heard from — via heartbeats or via
// job metadata embedded in I/O requests — and marks a job inactive when no
// heartbeat arrives for a configurable timeout. Every λ interval the
// controllers exchange their tables (an all-gather originally; an
// epidemic push-pull gossip since internal/cluster) so that every server
// converges on the global set of active jobs; a globally unfair token
// assignment therefore lasts a small multiple of λ. Each entry also
// records the set of servers
// where the job is I/O-active; a job present on k servers is deweighted by
// 1/k on each (Figure 5's token-count reconciliation), so that its
// aggregate share across the cluster matches the policy.
package jobtable

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"themisio/internal/policy"
)

// Status of a job as seen by one server.
type Status int

const (
	// Active means a heartbeat arrived within the timeout window.
	Active Status = iota
	// Inactive means the job has gone silent; its tokens are reclaimed.
	Inactive
)

// String returns "active" or "inactive".
func (s Status) String() string {
	if s == Active {
		return "active"
	}
	return "inactive"
}

// Entry is one row of the job status table.
type Entry struct {
	Info policy.JobInfo
	// Last is the time of the most recent heartbeat (or embedded-metadata
	// sighting) for the job, in the owning clock's domain.
	Last time.Duration
	// Servers is the set of server ids on which the job has been observed
	// doing I/O. Populated locally by Observe and unioned during Merge.
	Servers map[string]bool
	// Demand counts I/O requests observed from the job since creation;
	// used only for reporting.
	Demand int64
}

func (e *Entry) clone() Entry {
	cp := *e
	cp.Servers = make(map[string]bool, len(e.Servers))
	for s := range e.Servers {
		cp.Servers[s] = true
	}
	return cp
}

// ActiveSet is an immutable snapshot of the active job set. It is
// published atomically by the table so that readers on the request hot
// path (the server controller, scheduler epochs) never take the table
// lock and never allocate; Gen increases by one every time the
// membership — or any policy-relevant job attribute — of the active set
// actually changes.
type ActiveSet struct {
	Gen  uint64
	Jobs []policy.JobInfo
}

// Table is a thread-safe job status table. Time is expressed as
// time.Duration offsets from an arbitrary epoch so the table works
// identically under the discrete-event simulator's virtual clock and the
// live server's wall clock.
type Table struct {
	mu      sync.RWMutex
	owner   string
	entries map[string]*Entry
	timeout time.Duration

	// gen and active publish the epoch snapshot: writers that change the
	// active membership republish under mu; readers load the pointer with
	// no lock. gen moves only when the published snapshot really differs,
	// so a controller can gate recompilation on Generation() alone.
	gen    atomic.Uint64
	active atomic.Pointer[ActiveSet]
}

// DefaultTimeout is the heartbeat expiry used when none is configured;
// the paper uses "a predefined period of time", and production heartbeat
// periods are O(seconds).
const DefaultTimeout = 5 * time.Second

// New returns an empty table owned by the named server, with the given
// heartbeat timeout. A non-positive timeout selects DefaultTimeout.
func New(owner string, timeout time.Duration) *Table {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	t := &Table{owner: owner, entries: make(map[string]*Entry), timeout: timeout}
	t.active.Store(&ActiveSet{})
	return t
}

// Owner returns the server id that owns this table.
func (t *Table) Owner() string { return t.owner }

// Timeout returns the heartbeat expiry window.
func (t *Table) Timeout() time.Duration { return t.timeout }

// Heartbeat records a liveness sighting of the job at time now, inserting
// the job if it is new. Heartbeats assert liveness but not I/O activity on
// this server, so they do not extend Servers. Returns true if the active
// job set changed (new job, or stale job revived).
func (t *Table) Heartbeat(info policy.JobInfo, now time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := t.touch(info, now, false)
	if changed {
		t.republishLocked(now)
	}
	return changed
}

// Observe records that an I/O request from the job arrived at time now on
// this server. Embedded job metadata counts as a liveness signal, exactly
// as in the paper where servers learn job state "purely based on real-time
// I/O behavior". Returns true if the active set changed.
func (t *Table) Observe(info policy.JobInfo, now time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := t.touch(info, now, true)
	t.entries[info.JobID].Demand++
	if changed {
		t.republishLocked(now)
	}
	return changed
}

// touch implements Heartbeat/Observe under t.mu.
func (t *Table) touch(info policy.JobInfo, now time.Duration, io bool) bool {
	e, ok := t.entries[info.JobID]
	if !ok {
		e = &Entry{Info: info, Last: now, Servers: map[string]bool{}}
		if io {
			e.Servers[t.owner] = true
		}
		t.entries[info.JobID] = e
		return true
	}
	changed := now-e.Last > t.timeout // stale → active counts as a change
	next := info
	next.Presence = e.Info.Presence // presence is derived, not client-supplied
	if e.Info != next {
		changed = true // policy-relevant metadata moved (nodes, user, …)
	}
	e.Info = next
	if now > e.Last {
		e.Last = now
	}
	if io && !e.Servers[t.owner] {
		e.Servers[t.owner] = true
		changed = true
	}
	return changed
}

// Active returns the jobs whose last heartbeat is within the timeout as of
// now, sorted by JobID, with Presence set to the size of each job's
// observed server set (minimum 1).
func (t *Table) Active(now time.Duration) []policy.JobInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.activeLocked(now)
}

// activeLocked computes the active job list under t.mu (either mode).
func (t *Table) activeLocked(now time.Duration) []policy.JobInfo {
	var out []policy.JobInfo
	for _, e := range t.entries {
		if now-e.Last <= t.timeout {
			info := e.Info
			info.Presence = len(e.Servers)
			if info.Presence < 1 {
				info.Presence = 1
			}
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// republishLocked recomputes the active set as of now and publishes a new
// snapshot — bumping the generation — only if it differs from the current
// one. Callers hold t.mu for writing.
func (t *Table) republishLocked(now time.Duration) {
	jobs := t.activeLocked(now)
	cur := t.active.Load()
	if cur != nil && equalJobs(cur.Jobs, jobs) {
		return
	}
	t.active.Store(&ActiveSet{Gen: t.gen.Add(1), Jobs: jobs})
}

func equalJobs(a, b []policy.JobInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Generation returns the published snapshot's generation without taking
// the table lock. A controller that caches the last generation it
// compiled against can skip recompilation entirely while it is unchanged.
func (t *Table) Generation() uint64 { return t.gen.Load() }

// ActiveSnapshot returns the current immutable active-set snapshot. The
// returned value — including its Jobs slice — must not be mutated.
func (t *Table) ActiveSnapshot() *ActiveSet { return t.active.Load() }

// Refresh recomputes the active set as of now and republishes the
// snapshot if membership decayed (heartbeats aged past the timeout) or a
// clockless mutation (DropServer, Remove) changed it. It returns the
// current generation. The controller calls this once per λ; activeness
// is a function of time, so pure decay is otherwise invisible to the
// write-triggered republishes.
func (t *Table) Refresh(now time.Duration) uint64 {
	t.mu.Lock()
	t.republishLocked(now)
	t.mu.Unlock()
	return t.gen.Load()
}

// StatusOf returns the job's status as of now and whether it is known.
func (t *Table) StatusOf(jobID string, now time.Duration) (Status, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.entries[jobID]
	if !ok {
		return Inactive, false
	}
	if now-e.Last <= t.timeout {
		return Active, true
	}
	return Inactive, true
}

// Expire removes entries whose heartbeat age exceeds keep (defaulting to
// 4× the timeout when keep <= 0) and returns the number removed. The live
// server destroys the expired jobs' connection mappings when this fires
// (§4.2).
func (t *Table) Expire(now, keep time.Duration) int {
	if keep <= 0 {
		keep = 4 * t.timeout
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, e := range t.entries {
		if now-e.Last > keep {
			delete(t.entries, id)
			n++
		}
	}
	t.republishLocked(now)
	return n
}

// Remove deletes the job outright (client notified exit, §4.2).
func (t *Table) Remove(jobID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, jobID)
}

// Len returns the number of entries (active or not).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Snapshot returns a deep copy of all entries, sorted by JobID. This is
// what a controller sends to its peers during the λ all-gather.
func (t *Table) Snapshot() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.JobID < out[j].Info.JobID })
	return out
}

// Merge folds a peer snapshot into the table: new jobs are learned,
// fresher heartbeats win, and server sets are unioned (the token-count
// addition of Figure 5). Returns true if the active set or any presence
// changed as of now.
func (t *Table) Merge(snap []Entry, now time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := false
	for i := range snap {
		in := &snap[i]
		e, ok := t.entries[in.Info.JobID]
		if !ok {
			cp := in.clone()
			t.entries[in.Info.JobID] = &cp
			changed = true
			continue
		}
		if in.Last > e.Last {
			wasStale := now-e.Last > t.timeout
			e.Last = in.Last
			if wasStale && now-e.Last <= t.timeout {
				changed = true
			}
		}
		for s := range in.Servers {
			if !e.Servers[s] {
				e.Servers[s] = true
				changed = true
			}
		}
		if in.Demand > e.Demand {
			e.Demand = in.Demand
		}
	}
	if changed {
		t.republishLocked(now)
	}
	return changed
}

// DropServer removes a server from every entry's observed-server set —
// the failover path: when the cluster fabric declares a member failed,
// each job that was present on it sheds that presence, so the 1/k token
// deweighting (Figure 5) shifts the job's share onto the survivors.
// Returns true if any entry changed. DropServer has no clock, so the
// published snapshot is not touched here; the next Refresh (the
// controller's λ tick) folds the presence change into a new generation.
func (t *Table) DropServer(server string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := false
	for _, e := range t.entries {
		if e.Servers[server] {
			delete(e.Servers, server)
			changed = true
		}
	}
	return changed
}

// AllGather performs the λ-interval synchronization across a set of
// tables: every table merges every other table's snapshot. After the call
// all tables agree on the global active job set and per-job presence.
func AllGather(tables []*Table, now time.Duration) {
	snaps := make([][]Entry, len(tables))
	for i, t := range tables {
		snaps[i] = t.Snapshot()
	}
	for i, t := range tables {
		for j, snap := range snaps {
			if i == j {
				continue
			}
			t.Merge(snap, now)
		}
	}
}
