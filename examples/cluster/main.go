// The cluster-fabric walkthrough: four live servers form a fabric by
// gossip (each exchanges with one random peer per λ — no all-to-all),
// a job heartbeating a single server becomes globally visible within a
// few λ rounds, a client stripes a file over all four servers, and when
// one server is killed the survivors detect the failure, reassign its
// ring segment, and keep serving.
//
// Run: go run ./examples/cluster
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"themisio/internal/client"
	"themisio/internal/cluster"
	"themisio/internal/policy"
	"themisio/internal/server"
)

const lambda = 50 * time.Millisecond

func main() {
	// --- 1. Bring up a 4-server fabric through one seed. -----------------
	const n = 4
	servers := make([]*server.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		cfg := server.Config{
			Policy:       policy.SizeFair,
			Lambda:       lambda,
			FailTimeout:  6 * lambda,
			GossipFanout: 1, // strictly less than n-1: no all-to-all
			Seed:         int64(i + 1),
			Quiet:        true,
		}
		if i > 0 {
			cfg.Join = []string{addrs[0]}
		}
		servers[i] = server.New(ln, cfg)
		addrs[i] = servers[i].Addr()
		go servers[i].Serve()
	}
	fmt.Printf("started %d servers; server 1-%d join through %s\n", n, n-1, addrs[0])

	aliveEverywhere := func(want int) bool {
		for _, s := range servers {
			if s == nil {
				continue
			}
			alive := 0
			for _, m := range s.Cluster().Membership().Snapshot() {
				if m.State == cluster.StateAlive {
					alive++
				}
			}
			if alive != want {
				return false
			}
		}
		return true
	}
	start := time.Now()
	for !aliveEverywhere(n) {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("membership converged on all servers in %v (λ = %v)\n\n",
		time.Since(start).Round(time.Millisecond), lambda)

	// --- 2. Gossip λ-sync: one server's job goes global. -----------------
	solo, err := client.Dial(policy.JobInfo{JobID: "solo", UserID: "u1", Nodes: 8}, addrs[:1])
	if err != nil {
		log.Fatal(err)
	}
	defer solo.Close()
	start = time.Now()
	for {
		known := 0
		for _, s := range servers {
			for _, e := range s.Table().Snapshot() {
				if e.Info.JobID == "solo" {
					known++
				}
			}
		}
		if known == n {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("job \"solo\" heartbeats only %s, yet reached all %d job tables in %v\n\n",
		addrs[0], n, time.Since(start).Round(time.Millisecond))

	// --- 3. Striped I/O across the fabric. -------------------------------
	c, err := client.DialOpts(policy.JobInfo{JobID: "stripe", UserID: "u2", Nodes: 16},
		addrs, client.Options{Stripes: 4, StripeUnit: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, 8<<20)
	for i := range data {
		data[i] = byte(i * 131)
	}
	f, err := c.Open("/ckpt.bin", true)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	start = time.Now()
	if _, err := f.Write(data); err != nil {
		log.Fatal(err)
	}
	wDur := time.Since(start)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		log.Fatal(err)
	}
	got := make([]byte, len(data))
	start = time.Now()
	if _, err := io.ReadFull(f, got); err != nil {
		log.Fatal(err)
	}
	rDur := time.Since(start)
	if !bytes.Equal(got, data) {
		log.Fatal("striped read mismatch")
	}
	mbps := func(d time.Duration) float64 { return float64(len(data)) / d.Seconds() / 1e6 }
	fmt.Printf("striped 8 MiB over %d servers: write %.0f MB/s, read back %.0f MB/s, verified\n",
		n, mbps(wDur), mbps(rDur))
	for i, s := range servers {
		fmt.Printf("  server %d (%s) served %d requests\n", i, addrs[i], s.Served())
	}
	fmt.Println()

	// --- 4. Failover: kill a server, watch the fabric heal. --------------
	dead := addrs[3]
	fmt.Printf("killing %s (no goodbye)\n", dead)
	servers[3].Close()
	servers[3] = nil
	start = time.Now()
	for {
		failedEverywhere := true
		for _, s := range servers[:3] {
			m, ok := s.Cluster().Membership().Lookup(dead)
			if !ok || m.State != cluster.StateFailed {
				failedEverywhere = false
			}
		}
		if failedEverywhere {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("all survivors marked it failed in %v; ring is now %v\n",
		time.Since(start).Round(time.Millisecond),
		servers[0].Cluster().Membership().Ring().Nodes())

	// New I/O keeps flowing; the client reroutes once its first attempt
	// teaches it the server is gone. A half-created file from a failed
	// attempt records a layout naming the dead server, so clear it
	// before recreating.
	for {
		_ = c.Unlink("/after.bin")
		f2, err := c.Open("/after.bin", true)
		if err == nil {
			if _, err = f2.Write(data[:1<<20]); err == nil {
				f2.Close()
				break
			}
			f2.Close()
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("post-failover striped write succeeded on the %d survivors %v\n",
		len(c.Servers()), c.Servers())

	for _, s := range servers[:3] {
		s.Close()
	}
}
