// λ-delayed global fairness: the Figure 5/14 scenario. Two servers start
// with inconsistent local job views (job1 is striped across both; jobs 2
// and 3 each live on one server). Watch job1's share of the aggregate
// converge from the locally-fair 67% to the globally-fair 50% after the
// first job-table all-gather.
package main

import (
	"fmt"
	"time"

	"themisio/internal/bb"
	"themisio/internal/core"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

func main() {
	const lambda = 500 * time.Millisecond
	c := bb.NewCluster(bb.Config{
		Servers: 2,
		NewSched: func(i int, _ float64) sched.Scheduler {
			return core.New(policy.SizeFair, int64(i)+7)
		},
		Lambda:    lambda,
		Bin:       lambda,
		SyncDelay: 30 * time.Millisecond,
	})
	mk := func(int) workload.Stream {
		return workload.WriteReadCycle(10*workload.MB, workload.MB)
	}
	job := func(id, user string, nodes int) policy.JobInfo {
		return policy.JobInfo{JobID: id, UserID: user, GroupID: "g", Nodes: nodes}
	}
	c.AddJob(bb.JobSpec{Job: job("job1", "u1", 16), Procs: 64, MakeStream: mk, Targets: []int{0, 1}})
	c.AddJob(bb.JobSpec{Job: job("job2", "u2", 8), Procs: 32, MakeStream: mk, Targets: []int{0}})
	c.AddJob(bb.JobSpec{Job: job("job3", "u3", 8), Procs: 32, MakeStream: mk, Targets: []int{1}})

	horizon := 4 * time.Second
	c.Run(horizon)

	fmt.Printf("size-fair over 2 servers; sizes 16:8:8 -> fair shares 50%%:25%%:25%%\n")
	fmt.Printf("job1 stripes on both servers; jobs 2, 3 on disjoint servers\n")
	fmt.Printf("λ = %v (plus 30 ms control-plane latency)\n\n", lambda)
	fmt.Printf("%-10s %8s %8s %8s\n", "interval", "job1", "job2", "job3")
	r1 := c.Meter().Rates("job1", 0, horizon)
	r2 := c.Meter().Rates("job2", 0, horizon)
	r3 := c.Meter().Rates("job3", 0, horizon)
	for i := range r1 {
		tot := r1[i] + r2[i] + r3[i]
		if tot == 0 {
			continue
		}
		fmt.Printf("%-10d %7.1f%% %7.1f%% %7.1f%%\n",
			i+1, r1[i]/tot*100, r2[i]/tot*100, r3[i]/tot*100)
	}
	fmt.Println("\ninterval 1 is locally fair (job1 ≈ 67%); global fairness lands")
	fmt.Println("by interval 2 — a globally unfair state never outlives λ.")
}
