// Policy sharing: the Figure 8 scenario on the simulated burst buffer.
// A 4-node 224-process benchmark job competes with a 1-node 56-process
// job on one server; the same workload is arbitrated under size-fair,
// job-fair and user-fair, and the resulting throughput split is printed.
package main

import (
	"fmt"
	"time"

	"themisio/internal/bb"
	"themisio/internal/core"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

func main() {
	fmt.Println("Two competing benchmark jobs (10 MB write/read cycles, 1 MB blocks)")
	fmt.Println("job1: 4 nodes x 56 procs      job2: 1 node x 56 procs (15s-45s)")
	fmt.Println()
	fmt.Printf("%-22s %12s %12s %9s\n", "policy", "job1 (GB/s)", "job2 (GB/s)", "ratio")

	for _, polStr := range []string{"size-fair", "job-fair", "user-fair", "fifo"} {
		pol, err := policy.Parse(polStr)
		if err != nil {
			panic(err)
		}
		c := bb.NewCluster(bb.Config{
			Servers: 1,
			NewSched: func(i int, capacity float64) sched.Scheduler {
				if pol.FIFO {
					return sched.NewFIFO()
				}
				return core.New(pol, 42)
			},
		})
		mk := func(int) workload.Stream {
			return workload.WriteReadCycle(10*workload.MB, workload.MB)
		}
		c.AddJob(bb.JobSpec{
			Job:   policy.JobInfo{JobID: "job1", UserID: "alice", GroupID: "g", Nodes: 4},
			Procs: 224, MakeStream: mk, Stop: 60 * time.Second,
		})
		c.AddJob(bb.JobSpec{
			Job:   policy.JobInfo{JobID: "job2", UserID: "bob", GroupID: "g", Nodes: 1},
			Procs: 56, MakeStream: mk,
			Start: 15 * time.Second, Stop: 45 * time.Second,
		})
		c.Run(60 * time.Second)

		r1 := c.Meter().MedianRate("job1", 20*time.Second, 44*time.Second)
		r2 := c.Meter().MedianRate("job2", 20*time.Second, 44*time.Second)
		fmt.Printf("%-22s %12.1f %12.1f %8.2fx\n", polStr, r1/1e9, r2/1e9, r1/r2)
	}
	fmt.Println()
	fmt.Println("size-fair tracks the 4:1 node ratio; job-fair equalizes jobs;")
	fmt.Println("user-fair equalizes users; FIFO lets queue pressure decide.")
}
