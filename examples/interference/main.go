// Interference: the Figure 13 story for one application. A 64-node NAMD
// trace runs three ways on a two-server burst buffer: exclusive access,
// against a background I/O benchmark under FIFO, and against the same
// background job under size-fair.
package main

import (
	"fmt"
	"time"

	"themisio/internal/apptrace"
	"themisio/internal/bb"
	"themisio/internal/core"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

func run(name string, mk func(int, float64) sched.Scheduler, withBG bool) time.Duration {
	c := bb.NewCluster(bb.Config{Servers: 2, NewSched: mk})
	h := apptrace.Run(c, apptrace.NAMD, policy.JobInfo{
		JobID: "namd", UserID: "science", GroupID: "bio", Nodes: apptrace.NAMD.Nodes,
	})
	if withBG {
		c.AddJob(bb.JobSpec{
			Job:   policy.JobInfo{JobID: "background", UserID: "noisy", GroupID: "other", Nodes: 1},
			Procs: 56,
			MakeStream: func(int) workload.Stream {
				return workload.WriteReadCycle(10*workload.MB, workload.MB)
			},
		})
	}
	c.Run(10 * time.Minute)
	tts := h.TTS()
	fmt.Printf("%-28s %6.1f s\n", name, tts.Seconds())
	return tts
}

func main() {
	fmt.Println("NAMD (64 nodes) vs a 1-node background I/O benchmark, 2 servers")
	fmt.Println()
	themis := func(i int, _ float64) sched.Scheduler { return core.New(policy.SizeFair, int64(i)+13) }
	fifo := func(int, float64) sched.Scheduler { return sched.NewFIFO() }

	base := run("baseline (exclusive)", themis, false)
	ff := run("FIFO + background", fifo, true)
	fair := run("size-fair + background", themis, true)

	fmt.Println()
	fmt.Printf("FIFO slowdown      : %+.1f%%\n", (float64(ff)/float64(base)-1)*100)
	fmt.Printf("size-fair slowdown : %+.1f%%\n", (float64(fair)/float64(base)-1)*100)
	fmt.Printf("max possible under size-fair (1 bg node vs %d app nodes): %.1f%%\n",
		apptrace.NAMD.Nodes, 100.0/float64(apptrace.NAMD.Nodes+1))
}
