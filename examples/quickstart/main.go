// Quickstart: start an in-process ThemisIO server, connect a client
// under a job identity, and do POSIX-style I/O through the statistical
// token scheduler.
package main

import (
	"fmt"
	"io"
	"log"
	"net"

	"themisio/internal/client"
	"themisio/internal/policy"
	"themisio/internal/server"
)

func main() {
	// 1. A burst-buffer server with the size-fair policy (one flag is all
	//    the administrator configures).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	pol, _ := policy.Parse("size-fair")
	srv := server.New(ln, server.Config{Policy: pol, Quiet: true})
	go srv.Serve()
	defer srv.Close()
	fmt.Printf("themisd serving on %s with policy %s\n", srv.Addr(), pol)

	// 2. A client for a 4-node job. Job metadata rides in every request;
	//    no profiling, no user-supplied rates.
	c, err := client.Dial(policy.JobInfo{
		JobID: "job-42", UserID: "alice", GroupID: "astro", Nodes: 4,
	}, []string{srv.Addr()})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// 3. Plain POSIX-ish I/O.
	if err := c.Mkdir("/results"); err != nil {
		log.Fatal(err)
	}
	f, err := c.Open("/results/checkpoint.dat", true)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	payload := []byte("step=1000 energy=-42.17")
	if _, err := f.Write(payload); err != nil {
		log.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(f, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", buf)

	size, _, _ := c.Stat("/results/checkpoint.dat")
	names, _ := c.Readdir("/results")
	fmt.Printf("stat: %d bytes; readdir: %v\n", size, names)
	fmt.Printf("server executed %d requests\n", srv.Served())
}
