package themisio_test

// Testable examples for the public facade, so `go doc themisio` output
// is runnable documentation. Each example with an Output comment runs
// in the test suite; the server/client walkthrough is compile-checked
// only (it binds sockets).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"time"

	"themisio"
)

// ExampleShares shows what a policy means: the per-job token shares
// Equation 1 compiles for a job set.
func ExampleShares() {
	jobs := []themisio.JobInfo{
		{JobID: "climate", UserID: "alice", Nodes: 6},
		{JobID: "genome", UserID: "bob", Nodes: 2},
	}
	shares, err := themisio.Shares(jobs, themisio.SizeFair)
	if err != nil {
		panic(err)
	}
	ids := make([]string, 0, len(shares))
	for id := range shares {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("%s %.2f\n", id, shares[id])
	}
	// Output:
	// climate 0.75
	// genome 0.25
}

// ExampleParsePolicy parses the paper's composite policy notation.
func ExampleParsePolicy() {
	p, err := themisio.ParsePolicy("group-then-user-then-size-fair")
	if err != nil {
		panic(err)
	}
	fmt.Println(p)
	// A non-terminal policy is completed with a final job level.
	q, _ := themisio.ParsePolicy("user-fair")
	fmt.Println(q)
	// Output:
	// group-then-user-then-size-fair
	// user-then-job-fair
}

// ExampleNewScheduler compiles a policy into a statistical token
// assignment and inspects the per-job shares the workers draw against.
func ExampleNewScheduler() {
	sched := themisio.NewScheduler(themisio.UserFair, 1)
	sched.SetJobs([]themisio.JobInfo{
		{JobID: "j1", UserID: "alice"},
		{JobID: "j2", UserID: "alice"},
		{JobID: "j3", UserID: "bob"},
	})
	fmt.Printf("j1 %.2f j2 %.2f j3 %.2f\n",
		sched.Share("j1"), sched.Share("j2"), sched.Share("j3"))
	// Output:
	// j1 0.25 j2 0.25 j3 0.50
}

// ExampleNewServer is the live lifecycle: a server with a backing store
// for stage-out durability, a client writing and flushing, a graceful
// shutdown. (Compile-checked only: it binds sockets.)
func ExampleNewServer() {
	store, err := themisio.OpenBackingDir("/tmp/themisio-backing")
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := themisio.NewServer(ln, themisio.ServerConfig{
		Policy:  themisio.SizeFair,
		Backing: store, // re-hydrates on start, drains dirty data back
	})
	go srv.Serve()

	job := themisio.JobInfo{JobID: "ckpt-writer", UserID: "alice", Nodes: 4}
	c, err := themisio.Dial(job, []string{ln.Addr().String()})
	if err != nil {
		panic(err)
	}
	f, _ := c.Open("/ckpt.bin", true)
	f.Write([]byte("checkpoint bytes"))
	f.Close()
	c.Flush() // durability barrier: dirty bytes reach the backing store
	c.Close()
	srv.Leave() // graceful: flush, announce departure, stop
}

// ExampleClient_Open is the handle-based client API: Open returns a
// *File speaking io.ReadWriteSeeker, context variants bound each call,
// and failures match exported sentinels through errors.Is. (Compile-
// checked only: it binds sockets.)
func ExampleClient_Open() {
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	srv := themisio.NewServer(ln, themisio.ServerConfig{Policy: themisio.SizeFair})
	go srv.Serve()

	job := themisio.JobInfo{JobID: "analysis", UserID: "alice", Nodes: 2}
	c, err := themisio.DialStriped(job, []string{ln.Addr().String()}, themisio.ClientOptions{
		Stripes:        1,
		ConnsPerServer: themisio.AutoConnsPerServer, // pool scales with stripe width
	})
	if errors.Is(err, themisio.ErrInvalidOptions) {
		panic("malformed options are refused before any dial")
	}
	if err != nil {
		panic(err)
	}
	defer c.Close()

	// A handle is an io.ReadWriteSeeker: io.Copy and friends just work.
	f, err := c.Open("/results.bin", true)
	if err != nil {
		panic(err)
	}
	io.Copy(f, strings.NewReader("run output"))
	f.Seek(0, io.SeekStart)
	io.Copy(io.Discard, f)
	f.Close()

	// Context variants bound any call; cancellation surfaces as a typed
	// error, distinct from server failures.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, _, err := c.StatContext(ctx, "/missing"); errors.Is(err, themisio.ErrNotExist) {
		fmt.Println("no such file")
	} else if errors.Is(err, themisio.ErrCanceled) {
		fmt.Println("deadline hit first")
	}
	srv.Leave()
}

// ExampleNewCluster runs the discrete-event simulator for two seconds
// of virtual time and reports that the device envelope is saturated.
func ExampleNewCluster() {
	cl := themisio.NewCluster(themisio.ClusterConfig{
		Servers: 1,
		NewSched: func(i int, capacity float64) themisio.Scheduler {
			return themisio.NewScheduler(themisio.JobFair, int64(i))
		},
	})
	cl.AddProc(themisio.ClusterProc{
		Job:        themisio.JobInfo{JobID: "writer", UserID: "alice"},
		Stream:     themisio.WriteStream(1 << 20),
		QueueDepth: 32, // keep ≥ one tick of data in flight
		Stop:       2 * time.Second,
	})
	cl.Run(2 * time.Second)
	rate := cl.Meter().MeanRate("writer", 0, 2*time.Second)
	fmt.Printf("saturates one direction: %v\n", rate > 0.9*themisio.DirBW)
	// Output:
	// saturates one direction: true
}
