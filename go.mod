module themisio

go 1.22
