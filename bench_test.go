// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), one per experiment, plus micro-benchmarks of the hot
// paths (policy compilation, token draws, scheduler push/pop). Figure
// benchmarks report the key reproduced quantities via b.ReportMetric so
// `go test -bench` output doubles as a results table; EXPERIMENTS.md
// records paper-vs-measured side by side.
//
// Run:
//
//	go test -bench=. -benchmem
package themisio

import (
	"bytes"
	"encoding/gob"
	"fmt"
	mathrand "math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"themisio/internal/core"
	"themisio/internal/experiments"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/transport"
)

// reportMetrics publishes selected experiment metrics on the benchmark.
func reportMetrics(b *testing.B, res *experiments.Result, keys ...string) {
	b.Helper()
	for _, k := range keys {
		if v, ok := res.Metrics[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

func BenchmarkCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Capacity()
		reportMetrics(b, res, "write_gbps", "read_gbps", "combined_gbps")
	}
}

func BenchmarkFig7Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7()
		reportMetrics(b, res, "n1_read_gbps", "n8_eff", "n128_read_gbps", "n128_eff")
	}
}

func BenchmarkFig8aSizeFair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8a()
		reportMetrics(b, res, "alone_gbps", "job1_gbps", "job2_gbps", "ratio")
	}
}

func BenchmarkFig8bJobFair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8b()
		reportMetrics(b, res, "job1_gbps", "job2_gbps", "ratio")
	}
}

func BenchmarkFig8cUserFair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8c()
		reportMetrics(b, res, "userA_gbps", "userB_gbps")
	}
}

func BenchmarkFig9UserThenSizeFair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9()
		reportMetrics(b, res, "user1_gbps", "user2_gbps", "u1_ratio", "u2_ratio")
	}
}

func BenchmarkFig10GroupUserSizeFair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10()
		reportMetrics(b, res, "total_gbps", "group1_share", "group2_share")
	}
}

func BenchmarkFig12VsGiftTbf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12()
		reportMetrics(b, res,
			"themisio_peak_gbps", "gift_peak_gbps", "tbf_peak_gbps",
			"themisio_sigma_mbps", "gift_sigma_mbps", "tbf_sigma_mbps",
			"peak_gain_vs_gift_pct", "peak_gain_vs_tbf_pct")
	}
}

func BenchmarkFig14LambdaFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig14()
		reportMetrics(b, res,
			"l10_converge_interval", "l500_converge_interval",
			"l10_share_sigma", "l500_share_sigma")
	}
}

// Fig13/Fig1 run the full application suite (~1 minute of wall time per
// iteration); kept as a benchmark so `-bench Fig13` regenerates the
// table, but the per-app numbers live in EXPERIMENTS.md.
func BenchmarkFig13Applications(b *testing.B) {
	if testing.Short() {
		b.Skip("application suite takes ~1 minute")
	}
	for i := 0; i < b.N; i++ {
		res := experiments.Fig13()
		reportMetrics(b, res,
			"NAMD_fifo_pct", "NAMD_fair_pct",
			"WRF_fifo_pct", "WRF_fair_pct",
			"ResNet-50_fifo_pct", "ResNet-50_fair_pct")
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Ablation()
		reportMetrics(b, res, "opp_total_gbps", "strict_total_gbps")
	}
}

func BenchmarkMetadataIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Metadata()
		reportMetrics(b, res, "fifo_victim_gbps", "fair_victim_gbps")
	}
}

// BenchmarkStageOutSharing measures the drain engine's bandwidth share
// against a foreground job under two policies; the share must track the
// compiled token share (EXPERIMENTS.md records the numbers).
func BenchmarkStageOutSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.StageOut()
		reportMetrics(b, res,
			"sizefair_fg_gbps", "sizefair_drain_gbps",
			"sizefair_drain_share", "jobfair_drain_share")
	}
}

// BenchmarkRebalanceSharing measures join-time stripe migration's
// bandwidth share against a foreground job under two policies; like
// drain traffic, the measured share must track the compiled token
// share (EXPERIMENTS.md records the numbers).
func BenchmarkRebalanceSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Rebalance()
		reportMetrics(b, res,
			"sizefair_fg_gbps", "sizefair_migration_gbps",
			"sizefair_migration_share", "jobfair_migration_share")
	}
}

// --- micro-benchmarks of the contribution's hot paths -------------------

func makeJobs(n int) []policy.JobInfo {
	jobs := make([]policy.JobInfo, n)
	for i := range jobs {
		jobs[i] = policy.JobInfo{
			JobID:   fmt.Sprintf("job%04d", i),
			UserID:  fmt.Sprintf("user%02d", i%17),
			GroupID: fmt.Sprintf("grp%d", i%5),
			Nodes:   i%64 + 1,
		}
	}
	return jobs
}

// BenchmarkPolicyCompile measures Equation 1 (matrix chain compilation)
// for a three-tier composite policy over growing job populations — the
// controller pays this on every job arrival/departure/λ-sync.
func BenchmarkPolicyCompile(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		jobs := makeJobs(n)
		b.Run(fmt.Sprintf("jobs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := policy.Compile(jobs, policy.GroupUserSizeFair); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTokenDraw measures one statistical token draw + queue pop —
// the paper's argument is that this beats maintaining N tiers of locked
// token queues.
func BenchmarkTokenDraw(b *testing.B) {
	for _, n := range []int{2, 16, 128} {
		b.Run(fmt.Sprintf("jobs=%d", n), func(b *testing.B) {
			th := core.New(policy.SizeFair, 1)
			jobs := makeJobs(n)
			th.SetJobs(jobs)
			reqs := make([]*sched.Request, n)
			for i := range reqs {
				reqs[i] = &sched.Request{Job: jobs[i], Op: sched.OpWrite, Bytes: 1 << 20}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Push(reqs[i%n])
				if th.Pop(0, nil) == nil {
					b.Fatal("unexpected empty pop")
				}
			}
		})
	}
}

// mutexThemis reproduces the pre-refactor scheduler hot path exactly:
// one mutex serializing every Push and Pop, eligibility peeked segment
// by segment inside the lock, a locked rand.Rand token stream, and a
// served-count map write per pop. It exists only as the benchmark
// baseline the epoch-compiled implementation is measured against.
type mutexThemis struct {
	mu       sync.Mutex
	rng      *mathrand.Rand
	queues   *sched.JobQueues
	compiled *policy.Compiled
	served   map[string]int64
}

func newMutexThemis(pol policy.Policy, seed int64, jobs []policy.JobInfo) *mutexThemis {
	c, err := policy.Compile(jobs, pol)
	if err != nil {
		panic(err)
	}
	return &mutexThemis{
		rng:      mathrand.New(mathrand.NewSource(seed)),
		queues:   sched.NewJobQueues(),
		compiled: c,
		served:   map[string]int64{},
	}
}

func (t *mutexThemis) Push(r *sched.Request) {
	t.mu.Lock()
	t.queues.Push(r)
	t.mu.Unlock()
}

func (t *mutexThemis) Pop() *sched.Request {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.queues.Pending() == 0 {
		return nil
	}
	eligible := func(j string) bool { return t.queues.PeekFrom(j, nil) != nil }
	if job, ok := t.compiled.Assignment.PickEligible(eligible, t.rng.Float64); ok {
		if r := t.queues.PopFrom(job, nil); r != nil {
			t.served[job]++
			return r
		}
	}
	for _, id := range t.queues.Order() {
		if r := t.queues.PopFrom(id, nil); r != nil {
			t.served[id]++
			return r
		}
	}
	return nil
}

func (t *mutexThemis) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queues.Pending()
}

// BenchmarkThemisContended measures the scheduler under the live
// server's concurrency shape — 8 connection goroutines pushing, 4
// workers popping — for the epoch-compiled lock-striped implementation
// against the pre-refactor single-mutex implementation (mutexThemis).
// The acceptance bar for the refactor is striped ≥ 2× globalmutex
// ops/sec.
func BenchmarkThemisContended(b *testing.B) {
	const pushers, poppers = 8, 4
	jobs := makeJobs(16)
	reqs := make([]*sched.Request, len(jobs))
	for i := range reqs {
		reqs[i] = &sched.Request{Job: jobs[i], Op: sched.OpWrite, Bytes: 1 << 20}
	}
	run := func(b *testing.B, push func(*sched.Request), pop func() *sched.Request, pending func() int) {
		// Work is pre-split per goroutine: the harness itself shares no
		// counters on the hot path, so only scheduler costs are measured.
		per := b.N/pushers + 1
		var pushWG, popWG sync.WaitGroup
		var pushersDone atomic.Bool
		counts := make([]int64, poppers*8) // spaced to avoid false sharing
		b.ResetTimer()
		for p := 0; p < pushers; p++ {
			pushWG.Add(1)
			go func(p int) {
				defer pushWG.Done()
				for i := 0; i < per; i++ {
					// Closed-loop backpressure, as real connections have:
					// without it the benchmark mostly measures GC over an
					// unbounded backlog instead of scheduler contention.
					for pending() > 4096 {
						runtime.Gosched()
					}
					push(reqs[(p+i)%len(reqs)])
				}
			}(p)
		}
		for w := 0; w < poppers; w++ {
			popWG.Add(1)
			go func(w int) {
				defer popWG.Done()
				for {
					if pop() != nil {
						counts[w*8]++
						continue
					}
					if pushersDone.Load() && pending() == 0 {
						return
					}
					runtime.Gosched()
				}
			}(w)
		}
		pushWG.Wait()
		pushersDone.Store(true)
		popWG.Wait()
		var popped int64
		for w := 0; w < poppers; w++ {
			popped += counts[w*8]
		}
		if want := int64(per * pushers); popped != want {
			b.Fatalf("conservation: popped %d of %d", popped, want)
		}
	}
	b.Run("striped", func(b *testing.B) {
		th := core.New(policy.SizeFair, 1)
		th.SetJobs(jobs)
		run(b, th.Push, func() *sched.Request { return th.Pop(0, nil) }, th.Pending)
	})
	b.Run("globalmutex", func(b *testing.B) {
		th := newMutexThemis(policy.SizeFair, 1, jobs)
		run(b, th.Push, th.Pop, th.Pending)
	})
}

// BenchmarkCodec compares the length-prefixed binary codec against gob
// for the hot data messages (a 64 KiB write request and its read-back
// response). Run with -benchmem: the binary codec's pooled buffers must
// show fewer allocs/op than gob.
func BenchmarkCodec(b *testing.B) {
	req := &transport.Request{
		Type: transport.MsgWrite,
		Seq:  12345,
		Job:  policy.JobInfo{JobID: "job42", UserID: "user7", GroupID: "grp1", Nodes: 64},
		Path: "/data/checkpoint-000042.bin",
		Data: bytes.Repeat([]byte{0xa5}, 64<<10),
	}
	resp := &transport.Response{Seq: 12345, N: 64 << 10, Data: req.Data}
	b.Run("binary/write-req", func(b *testing.B) {
		b.ReportAllocs()
		var scratch []byte
		for i := 0; i < b.N; i++ {
			scratch = transport.AppendRequestFrame(scratch[:0], req)
			var got transport.Request
			if err := transport.DecodeRequestFrame(scratch, &got); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob/write-req", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(req); err != nil {
				b.Fatal(err)
			}
			var got transport.Request
			if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary/read-resp", func(b *testing.B) {
		b.ReportAllocs()
		var scratch []byte
		for i := 0; i < b.N; i++ {
			scratch = transport.AppendResponseFrame(scratch[:0], resp)
			var got transport.Response
			if err := transport.DecodeResponseFrame(scratch, &got); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob/read-resp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
				b.Fatal(err)
			}
			var got transport.Response
			if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSchedulers compares push+pop cost across all four schedulers
// under identical two-job traffic.
func BenchmarkSchedulers(b *testing.B) {
	jobs := makeJobs(2)
	mk := map[string]func() sched.Scheduler{
		"fifo":   func() sched.Scheduler { return sched.NewFIFO() },
		"themis": func() sched.Scheduler { return core.New(policy.JobFair, 1) },
		"gift":   func() sched.Scheduler { return sched.NewGIFT(sched.GIFTConfig{Capacity: 22e9}) },
		"tbf":    func() sched.Scheduler { return sched.NewTBF(sched.TBFConfig{Capacity: 22e9}) },
	}
	for name, factory := range mk {
		b.Run(name, func(b *testing.B) {
			s := factory()
			s.SetJobs(jobs)
			now := time.Duration(0)
			for i := 0; i < b.N; i++ {
				s.Push(&sched.Request{Job: jobs[i%2], Op: sched.OpWrite, Bytes: 1 << 20})
				now += time.Microsecond
				s.Pop(now, nil)
			}
		})
	}
}

// BenchmarkPolicySwapSharing runs the live policy hot-swap sweep: a
// mid-flood policy flip, a flip during a rebalance, and a straggling
// member, each reporting the measured-vs-compiled share residuals the
// fairness CI gate bounds at ±0.02.
func BenchmarkPolicySwapSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.PolicySwap()
		reportMetrics(b, res,
			"swap_post_share", "swap_post_residual",
			"rebalance_post_residual", "straggler_ledger_residual")
	}
}
