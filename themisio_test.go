package themisio

import (
	"math"
	"net"
	"testing"
	"time"
)

// The facade compiles policies and reports shares like the paper's
// examples.
func TestSharesFacade(t *testing.T) {
	pol, err := ParsePolicy("user-then-size-fair")
	if err != nil {
		t.Fatal(err)
	}
	shares, err := Shares([]JobInfo{
		{JobID: "a", UserID: "u1", Nodes: 1},
		{JobID: "b", UserID: "u1", Nodes: 2},
		{JobID: "c", UserID: "u2", Nodes: 4},
	}, pol)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"a": 1.0 / 6, "b": 2.0 / 6, "c": 0.5}
	for id, w := range want {
		if math.Abs(shares[id]-w) > 1e-9 {
			t.Fatalf("share(%s) = %g, want %g", id, shares[id], w)
		}
	}
}

func TestSchedulerFacade(t *testing.T) {
	s := NewScheduler(SizeFair, 1)
	s.SetJobs([]JobInfo{{JobID: "x", UserID: "u", Nodes: 3}})
	if got := s.Share("x"); got != 1 {
		t.Fatalf("lone job share = %g", got)
	}
	if s.Policy().String() != "size-fair" {
		t.Fatal("policy accessor")
	}
}

// End-to-end through the facade: live server + client.
func TestLiveFacadeRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, ServerConfig{Policy: SizeFair, Quiet: true})
	go srv.Serve()
	defer srv.Close()

	c, err := Dial(JobInfo{JobID: "j", UserID: "u", Nodes: 2}, []string{srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fd, err := c.OpenFd("/facade.txt", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	size, _, err := c.Stat("/facade.txt")
	if err != nil || size != 2 {
		t.Fatalf("stat: %d %v", size, err)
	}
}

// Simulated cluster through the facade.
func TestClusterFacade(t *testing.T) {
	c := NewCluster(ClusterConfig{
		Servers:  1,
		NewSched: func(i int, _ float64) Scheduler { return NewScheduler(JobFair, 9) },
	})
	if c.Servers() != 1 || c.Efficiency() != 1 {
		t.Fatal("cluster config")
	}
	c.Run(100 * time.Millisecond)
	if c.Now() != 100*time.Millisecond {
		t.Fatalf("virtual clock at %v", c.Now())
	}
}

func TestCalibrationConstants(t *testing.T) {
	if DirBW != 11.7e9 || DeviceBW != 22e9 || Lambda != 500*time.Millisecond {
		t.Fatal("calibration constants drifted from the paper's envelope")
	}
}
