package main

import (
	"math"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		want BenchResult
	}{
		{
			line: "BenchmarkThemisContended-8   \t 5000000 \t 220.5 ns/op",
			ok:   true,
			want: BenchResult{Name: "BenchmarkThemisContended", Iterations: 5000000, NsPerOp: 220.5},
		},
		{
			line: "BenchmarkCodec/write-64KiB-8  100  5208 ns/op  12590.54 MB/s  360 B/op  5 allocs/op",
			ok:   true,
			want: BenchResult{
				Name: "BenchmarkCodec/write-64KiB", Iterations: 100,
				NsPerOp: 5208, MBPerS: 12590.54, BytesPerOp: 360, AllocsPerOp: 5,
			},
		},
		{
			// Custom b.ReportMetric units land in Extra.
			line: "BenchmarkPolicySwapSharing  1  267833660 ns/op  0.7514 swap_post_share  0.0014 swap_post_residual",
			ok:   true,
			want: BenchResult{
				Name: "BenchmarkPolicySwapSharing", Iterations: 1, NsPerOp: 267833660,
				Extra: map[string]float64{"swap_post_share": 0.7514, "swap_post_residual": 0.0014},
			},
		},
		// Non-result lines are rejected.
		{line: "goos: linux"},
		{line: "pkg: themisio"},
		{line: "PASS"},
		{line: "ok  \tthemisio\t0.272s"},
		{line: ""},
		{line: "BenchmarkBroken notanumber ns/op"},
	}
	for _, tc := range cases {
		got, ok := parseBenchLine("themisio", tc.line)
		if ok != tc.ok {
			t.Errorf("parse(%q) ok=%v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if got.Name != tc.want.Name || got.Iterations != tc.want.Iterations ||
			math.Abs(got.NsPerOp-tc.want.NsPerOp) > 1e-9 ||
			math.Abs(got.MBPerS-tc.want.MBPerS) > 1e-9 ||
			got.BytesPerOp != tc.want.BytesPerOp || got.AllocsPerOp != tc.want.AllocsPerOp ||
			got.Pkg != "themisio" {
			t.Errorf("parse(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
		for k, v := range tc.want.Extra {
			if math.Abs(got.Extra[k]-v) > 1e-9 {
				t.Errorf("parse(%q) Extra[%s] = %v, want %v", tc.line, k, got.Extra[k], v)
			}
		}
	}
}
