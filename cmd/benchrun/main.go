// Command benchrun regenerates the paper's tables and figures on the
// simulated burst buffer, and emits the CI bench trajectory.
//
// Usage:
//
//	benchrun -list
//	benchrun -exp fig8a
//	benchrun -exp all
//	benchrun -bench 'ThemisContended|Codec' -benchtime 100x -out BENCH.json . ./internal/cluster
//	benchrun -regress BENCH_PR6.json fresh1.json fresh2.json
//
// Every experiment is deterministic: fixed seeds, virtual time.
//
// With -bench, benchrun instead shells out to `go test -bench` for the
// listed packages (default ".") and distills the results — ns/op,
// MB/s, allocs/op, and custom metrics — into a JSON trajectory file
// for the CI perf-baseline artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"themisio/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	bench := flag.String("bench", "", "run `go test` benchmarks matching this regex and emit a JSON trajectory")
	benchtime := flag.String("benchtime", "100x", "benchtime passed to `go test` in -bench mode")
	out := flag.String("out", "", "JSON output path in -bench mode (default stdout)")
	regress := flag.String("regress", "",
		"baseline trajectory JSON; compare the fresh sample files given as positional args and exit non-zero on regression")
	guard := flag.String("guard", defaultGuard, "regex of benchmark names the -regress gate enforces")
	tolerance := flag.Float64("tolerance", 0.20, "fractional regression allowed by -regress (0.20 = 20%)")
	flag.Parse()

	if *regress != "" {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "benchrun: -regress needs at least one fresh sample JSON as a positional argument")
			os.Exit(2)
		}
		if err := runRegress(os.Stdout, *guard, *tolerance, *regress, flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}

	if *bench != "" {
		pkgs := flag.Args()
		if len(pkgs) == 0 {
			pkgs = []string{"."}
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := runBenchJSON(w, *bench, *benchtime, pkgs); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, s := range experiments.Registry {
			fmt.Printf("  %-9s %s\n", s.ID, s.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	run := func(s *experiments.Spec) {
		start := time.Now()
		res := s.Run()
		fmt.Print(res.Render())
		fmt.Printf("(regenerated in %.1fs wall)\n\n", time.Since(start).Seconds())
	}
	if *exp == "all" {
		for i := range experiments.Registry {
			run(&experiments.Registry[i])
		}
		return
	}
	s := experiments.Lookup(*exp)
	if s == nil {
		fmt.Fprintf(os.Stderr, "benchrun: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(s)
}
