// Command benchrun regenerates the paper's tables and figures on the
// simulated burst buffer.
//
// Usage:
//
//	benchrun -list
//	benchrun -exp fig8a
//	benchrun -exp all
//
// Every experiment is deterministic: fixed seeds, virtual time.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"themisio/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, s := range experiments.Registry {
			fmt.Printf("  %-9s %s\n", s.ID, s.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	run := func(s *experiments.Spec) {
		start := time.Now()
		res := s.Run()
		fmt.Print(res.Render())
		fmt.Printf("(regenerated in %.1fs wall)\n\n", time.Since(start).Seconds())
	}
	if *exp == "all" {
		for i := range experiments.Registry {
			run(&experiments.Registry[i])
		}
		return
	}
	s := experiments.Lookup(*exp)
	if s == nil {
		fmt.Fprintf(os.Stderr, "benchrun: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(s)
}
