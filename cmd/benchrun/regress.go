// Regression-gate mode: compare a freshly measured bench trajectory
// against a committed baseline and fail when a guarded benchmark got
// meaningfully worse. The gate is deliberately narrow — only the
// benchmarks matching the guard regex count, because the shared CI
// runners are noisy enough that gating every micro-benchmark would
// flap — and tolerant: more than one fresh sample file may be given
// and the best value per benchmark is compared, so a single descheduled
// run cannot fail the build on its own.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
)

// defaultGuard covers the zero-copy data plane's two acceptance
// numbers — striped fabric throughput (MB/s) and the wire codec
// (ns/op) — plus the control-plane-at-scale pair: the incremental
// recompile and the hierarchical ledger roll at 100k entries.
const defaultGuard = "StripedThroughput|Codec/binary|Compile100kJobs/delta|LedgerRoll100k/hier"

// loadBenchFile reads one trajectory JSON produced by -bench mode.
func loadBenchFile(path string) (*BenchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

// bestResults folds several sample files into the best observation per
// benchmark name: highest MB/s, lowest ns/op, lowest allocs/op. Taking
// the per-metric best across runs is the standard noisy-runner defence
// (a benchmark's true cost is its minimum, everything above is
// interference).
func bestResults(files []*BenchFile) map[string]BenchResult {
	best := map[string]BenchResult{}
	for _, f := range files {
		for _, r := range f.Results {
			b, ok := best[r.Name]
			if !ok {
				best[r.Name] = r
				continue
			}
			if r.MBPerS > b.MBPerS {
				b.MBPerS = r.MBPerS
			}
			if r.NsPerOp < b.NsPerOp {
				b.NsPerOp = r.NsPerOp
			}
			if r.AllocsPerOp < b.AllocsPerOp {
				b.AllocsPerOp = r.AllocsPerOp
			}
			best[r.Name] = b
		}
	}
	return best
}

// runRegress compares the best of the fresh sample files against the
// baseline for every benchmark matching guard, and returns an error
// listing every guarded benchmark whose MB/s dropped, or whose ns/op
// rose, by more than tolerance (a fraction: 0.2 = 20%). Benchmarks
// present only on one side are skipped — a renamed or new benchmark is
// not a regression — but a baseline whose guard matches nothing is an
// error, so a typo in the guard cannot pass vacuously.
func runRegress(w io.Writer, guard string, tolerance float64, baselinePath string, freshPaths []string) error {
	re, err := regexp.Compile(guard)
	if err != nil {
		return fmt.Errorf("benchrun: bad -guard regex: %v", err)
	}
	baseFile, err := loadBenchFile(baselinePath)
	if err != nil {
		return err
	}
	var fresh []*BenchFile
	for _, p := range freshPaths {
		f, err := loadBenchFile(p)
		if err != nil {
			return err
		}
		fresh = append(fresh, f)
	}
	base := bestResults([]*BenchFile{baseFile})
	cur := bestResults(fresh)

	guarded := 0
	var failures []string
	for name, b := range base {
		if !re.MatchString(name) {
			continue
		}
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(w, "SKIP %s: not in fresh samples\n", name)
			continue
		}
		guarded++
		switch {
		case b.MBPerS > 0:
			floor := b.MBPerS * (1 - tolerance)
			verdict := "ok"
			if c.MBPerS < floor {
				verdict = "REGRESSED"
				failures = append(failures, fmt.Sprintf(
					"%s: %.1f MB/s vs baseline %.1f (floor %.1f)", name, c.MBPerS, b.MBPerS, floor))
			}
			fmt.Fprintf(w, "%-55s %9.1f MB/s  baseline %9.1f  %s\n", name, c.MBPerS, b.MBPerS, verdict)
		case b.NsPerOp > 0:
			ceil := b.NsPerOp * (1 + tolerance)
			verdict := "ok"
			if c.NsPerOp > ceil {
				verdict = "REGRESSED"
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f ns/op vs baseline %.0f (ceiling %.0f)", name, c.NsPerOp, b.NsPerOp, ceil))
			}
			fmt.Fprintf(w, "%-55s %9.0f ns/op  baseline %9.0f  %s\n", name, c.NsPerOp, b.NsPerOp, verdict)
		}
	}
	if guarded == 0 {
		return fmt.Errorf("benchrun: guard %q matched no baseline benchmarks", guard)
	}
	if len(failures) > 0 {
		msg := "benchrun: perf regression:"
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
