// Bench-trajectory mode: run the repository's micro-benchmark smoke
// set through `go test -bench` and distill the standard benchmark
// output into a machine-readable JSON file (ns/op, MB/s, B/op,
// allocs/op, plus any custom b.ReportMetric units like the sharing
// residuals). CI runs this at -benchtime=100x and uploads the file as
// a workflow artifact, so every PR leaves a perf baseline the next one
// can diff against instead of a green checkmark and no numbers.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's distilled result line.
type BenchResult struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric units (e.g. the policy-swap
	// sharing residuals), keyed by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// BenchFile is the trajectory file schema.
type BenchFile struct {
	GoVersion string        `json:"go_version"`
	GoOS      string        `json:"go_os"`
	GoArch    string        `json:"go_arch"`
	Benchtime string        `json:"benchtime"`
	Pattern   string        `json:"pattern"`
	Results   []BenchResult `json:"results"`
}

// runBenchJSON executes the benchmarks matching pattern in each
// package and writes the JSON trajectory to w. Benchmark failures are
// reported, not swallowed: a bench set that no longer runs must fail
// the CI step, or the trajectory silently goes stale.
func runBenchJSON(w io.Writer, pattern, benchtime string, pkgs []string) error {
	out := BenchFile{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Benchtime: benchtime,
		Pattern:   pattern,
	}
	for _, pkg := range pkgs {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", pattern, "-benchtime", benchtime, "-benchmem", "-short", pkg)
		raw, err := cmd.CombinedOutput()
		if err != nil {
			return fmt.Errorf("benchrun: %s: %v\n%s", pkg, err, raw)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if r, ok := parseBenchLine(pkg, line); ok {
				out.Results = append(out.Results, r)
			}
		}
	}
	if len(out.Results) == 0 {
		return fmt.Errorf("benchrun: pattern %q matched no benchmarks in %v", pattern, pkgs)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// parseBenchLine distills one `go test -bench` result line, e.g.
//
//	BenchmarkCodec/write-64KiB-8  100  5208 ns/op  12590.54 MB/s  360 B/op  5 allocs/op
//
// Lines that are not benchmark results (goos/pkg banners, PASS, ok)
// report false. The trailing -N GOMAXPROCS suffix is stripped from the
// name; value/unit pairs beyond the iteration count are keyed by unit,
// with unrecognized units kept in Extra.
func parseBenchLine(pkg, line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := BenchResult{Name: name, Pkg: pkg, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, seen
}
