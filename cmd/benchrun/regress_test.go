package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name string, results []BenchResult) string {
	t.Helper()
	p := filepath.Join(dir, name)
	raw, err := json.Marshal(&BenchFile{GoVersion: "test", Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegressGate(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", []BenchResult{
		{Name: "BenchmarkStripedThroughput/servers=4", MBPerS: 1000, NsPerOp: 5e6},
		{Name: "BenchmarkCodec/binary/write-req", NsPerOp: 30000},
		{Name: "BenchmarkUnguarded", NsPerOp: 10},
	})

	// Within tolerance (and an unguarded benchmark tanking) passes.
	ok := writeBench(t, dir, "ok.json", []BenchResult{
		{Name: "BenchmarkStripedThroughput/servers=4", MBPerS: 850, NsPerOp: 6e6},
		{Name: "BenchmarkCodec/binary/write-req", NsPerOp: 35000},
		{Name: "BenchmarkUnguarded", NsPerOp: 10000},
	})
	var out bytes.Buffer
	if err := runRegress(&out, defaultGuard, 0.20, base, []string{ok}); err != nil {
		t.Fatalf("within-tolerance run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "StripedThroughput") {
		t.Fatalf("report missing guarded benchmark: %q", out.String())
	}

	// A throughput drop past tolerance fails and names the benchmark.
	slow := writeBench(t, dir, "slow.json", []BenchResult{
		{Name: "BenchmarkStripedThroughput/servers=4", MBPerS: 700, NsPerOp: 7e6},
		{Name: "BenchmarkCodec/binary/write-req", NsPerOp: 31000},
	})
	out.Reset()
	err := runRegress(&out, defaultGuard, 0.20, base, []string{slow})
	if err == nil || !strings.Contains(err.Error(), "StripedThroughput") {
		t.Fatalf("regressed throughput not caught: %v", err)
	}

	// Best-of-N: a second clean sample rescues one descheduled run.
	out.Reset()
	if err := runRegress(&out, defaultGuard, 0.20, base, []string{slow, ok}); err != nil {
		t.Fatalf("best-of-two should pass: %v\n%s", err, out.String())
	}

	// A codec slowdown past tolerance fails on ns/op.
	slowCodec := writeBench(t, dir, "slowcodec.json", []BenchResult{
		{Name: "BenchmarkStripedThroughput/servers=4", MBPerS: 1100, NsPerOp: 5e6},
		{Name: "BenchmarkCodec/binary/write-req", NsPerOp: 60000},
	})
	out.Reset()
	if err := runRegress(&out, defaultGuard, 0.20, base, []string{slowCodec}); err == nil ||
		!strings.Contains(err.Error(), "Codec") {
		t.Fatalf("regressed codec not caught: %v", err)
	}

	// A guard that matches nothing is an error, not a vacuous pass.
	if err := runRegress(&out, "NoSuchBench", 0.20, base, []string{ok}); err == nil {
		t.Fatal("empty guard match must fail")
	}

	// A benchmark missing from the fresh samples is skipped, not failed.
	partial := writeBench(t, dir, "partial.json", []BenchResult{
		{Name: "BenchmarkCodec/binary/write-req", NsPerOp: 30000},
	})
	out.Reset()
	if err := runRegress(&out, defaultGuard, 0.20, base, []string{partial}); err != nil {
		t.Fatalf("missing fresh benchmark must skip: %v", err)
	}
	if !strings.Contains(out.String(), "SKIP") {
		t.Fatalf("skip not reported: %q", out.String())
	}
}
