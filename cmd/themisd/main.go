// Command themisd runs a live ThemisIO burst-buffer server.
//
// Usage:
//
//	themisd -listen 127.0.0.1:7000 -policy size-fair
//	themisd -listen 127.0.0.1:7001 -policy size-fair -join 127.0.0.1:7000
//	themisd -listen 127.0.0.1:7002 -policy size-fair -join 127.0.0.1:7000 -gossip-fanout 3
//	themisd -listen 127.0.0.1:7003 -policy size-fair -join 127.0.0.1:7000 -backing /pfs/bb
//	themisd -listen 127.0.0.1:7004 -policy size-fair -metrics-addr 127.0.0.1:9100
//
// The sharing policy is the single administrator-facing parameter the
// paper describes; any primitive or composite policy string parses
// (fifo, job-fair, user-fair, size-fair, priority-fair,
// user-then-size-fair, group-then-user-then-size-fair, ...).
//
// A server joins the cluster fabric through any live member (-join);
// membership, job tables, and failures then spread by gossip — each
// server exchanges with -gossip-fanout random peers per λ, not with
// every peer. On SIGTERM the server leaves gracefully so its ring
// segment reassigns immediately instead of after the failure timeout.
//
// With -backing, the server stages dirty data out to the given
// directory (the stand-in for the parallel file system behind the burst
// buffer) in the background — under the sharing policy, as a synthetic
// stage-out job — re-hydrates its shard from it on start, and adopts a
// failed peer's files from it during failover. A graceful shutdown
// flushes before leaving. See docs/OPERATIONS.md.
//
// When a member joins, existing file layouts are migrated onto the
// grown ring (-rebalance, on by default): migration traffic runs as a
// synthetic rebalance job through the token scheduler, so the sharing
// policy caps it against foreground I/O. Watch progress with
// `themisctl rebalance status`.
//
// With -metrics-addr, the server exposes its operator endpoint there:
// GET /metrics in the Prometheus text format (every fabric layer —
// scheduler, transport, workers, backing, rebalance, cluster, and the
// per-entity share ledger), GET /healthz for readiness (503 while
// re-hydrating or after a failed boot), and /debug/pprof for profiles.
// Logs are structured (-log-level debug|info|warn|error). See
// docs/OPERATIONS.md for the monitoring runbook.
package main

import (
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"

	"themisio/internal/backing"
	"themisio/internal/obsv"
	"themisio/internal/policy"
	"themisio/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "listen address")
	polStr := flag.String("policy", "size-fair", "sharing policy")
	workers := flag.Int("workers", 4, "worker pool size")
	capacity := flag.Int64("capacity", 256<<20, "storage device bytes")
	peers := flag.String("peers", "", "deprecated alias for -join (was: static peer list)")
	join := flag.String("join", "", "comma-separated addresses of existing cluster members")
	fanout := flag.Int("gossip-fanout", 0, "random peers gossiped with per λ round (0 = default)")
	backingDir := flag.String("backing", "", "backing-store directory for stage-out durability (empty = volatile)")
	rebalance := flag.Bool("rebalance", true, "migrate existing stripes onto joining members (policy-governed)")
	metricsAddr := flag.String("metrics-addr", "", "operator endpoint address for /metrics, /healthz and /debug/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	flag.Parse()

	level, err := obsv.ParseLevel(*logLevel)
	if err != nil {
		slog.Error("themisd: bad -log-level", "err", err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	dlog := logger.With("component", "themisd")
	fatal := func(msg string, err error) {
		dlog.Error(msg, "err", err)
		os.Exit(1)
	}

	pol, err := policy.Parse(*polStr)
	if err != nil {
		fatal("bad -policy", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("listen failed", err)
	}
	var seeds []string
	if *join != "" {
		seeds = append(seeds, strings.Split(*join, ",")...)
	}
	if *peers != "" {
		seeds = append(seeds, strings.Split(*peers, ",")...)
	}
	cfg := server.Config{
		Policy:            pol,
		Workers:           *workers,
		Capacity:          *capacity,
		Join:              seeds,
		GossipFanout:      *fanout,
		RebalanceDisabled: !*rebalance,
		Logger:            logger,
	}
	if *backingDir != "" {
		store, err := backing.OpenDir(*backingDir)
		if err != nil {
			fatal("backing store open failed", err)
		}
		cfg.Backing = store
	}

	// The operator endpoint comes up before server.New so that /healthz
	// answers 503 ("initializing") during a potentially long backing-store
	// re-hydration instead of refusing connections.
	var srvPtr atomic.Pointer[server.Server]
	if *metricsAddr != "" {
		reg := obsv.NewRegistry()
		cfg.Metrics = reg
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal("metrics listen failed", err)
		}
		mux := obsv.Mux(reg, func() (bool, string) {
			s := srvPtr.Load()
			if s == nil {
				return false, "initializing: rehydrating from backing store"
			}
			return s.Ready()
		})
		go func() {
			if err := (&http.Server{Handler: mux}).Serve(mln); err != nil {
				dlog.Error("operator endpoint failed", "err", err)
			}
		}()
		dlog.Info("operator endpoint up", "metrics_addr", mln.Addr().String())
	}

	srv := server.New(ln, cfg)
	srvPtr.Store(srv)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	if err := srv.BootErr(); err != nil {
		if *metricsAddr == "" {
			fatal("boot failed", err)
		}
		// Keep the operator endpoint up for diagnosis: /healthz reports
		// 503 with the boot error, /metrics still renders. Serving is
		// refused until an operator intervenes.
		dlog.Error("boot failed; serving refused, operator endpoint stays up", "err", err)
		<-sig
		os.Exit(1)
	}
	dlog.Info("serving", "addr", srv.Addr(), "policy", pol.String(), "workers", *workers)

	go func() {
		<-sig
		dlog.Info("leaving cluster and shutting down", "served", srv.Served())
		srv.Leave()
		os.Exit(0)
	}()
	srv.Serve()
}
