// Command themisd runs a live ThemisIO burst-buffer server.
//
// Usage:
//
//	themisd -listen 127.0.0.1:7000 -policy size-fair
//	themisd -listen 127.0.0.1:7001 -policy size-fair -join 127.0.0.1:7000
//	themisd -listen 127.0.0.1:7002 -policy size-fair -join 127.0.0.1:7000 -gossip-fanout 3
//	themisd -listen 127.0.0.1:7003 -policy size-fair -join 127.0.0.1:7000 -backing /pfs/bb
//
// The sharing policy is the single administrator-facing parameter the
// paper describes; any primitive or composite policy string parses
// (fifo, job-fair, user-fair, size-fair, priority-fair,
// user-then-size-fair, group-then-user-then-size-fair, ...).
//
// A server joins the cluster fabric through any live member (-join);
// membership, job tables, and failures then spread by gossip — each
// server exchanges with -gossip-fanout random peers per λ, not with
// every peer. On SIGTERM the server leaves gracefully so its ring
// segment reassigns immediately instead of after the failure timeout.
//
// With -backing, the server stages dirty data out to the given
// directory (the stand-in for the parallel file system behind the burst
// buffer) in the background — under the sharing policy, as a synthetic
// stage-out job — re-hydrates its shard from it on start, and adopts a
// failed peer's files from it during failover. A graceful shutdown
// flushes before leaving. See docs/OPERATIONS.md.
//
// When a member joins, existing file layouts are migrated onto the
// grown ring (-rebalance, on by default): migration traffic runs as a
// synthetic rebalance job through the token scheduler, so the sharing
// policy caps it against foreground I/O. Watch progress with
// `themisctl rebalance status`.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"themisio/internal/backing"
	"themisio/internal/policy"
	"themisio/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "listen address")
	polStr := flag.String("policy", "size-fair", "sharing policy")
	workers := flag.Int("workers", 4, "worker pool size")
	capacity := flag.Int64("capacity", 256<<20, "storage device bytes")
	peers := flag.String("peers", "", "deprecated alias for -join (was: static peer list)")
	join := flag.String("join", "", "comma-separated addresses of existing cluster members")
	fanout := flag.Int("gossip-fanout", 0, "random peers gossiped with per λ round (0 = default)")
	backingDir := flag.String("backing", "", "backing-store directory for stage-out durability (empty = volatile)")
	rebalance := flag.Bool("rebalance", true, "migrate existing stripes onto joining members (policy-governed)")
	flag.Parse()

	pol, err := policy.Parse(*polStr)
	if err != nil {
		log.Fatalf("themisd: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("themisd: %v", err)
	}
	var seeds []string
	if *join != "" {
		seeds = append(seeds, strings.Split(*join, ",")...)
	}
	if *peers != "" {
		seeds = append(seeds, strings.Split(*peers, ",")...)
	}
	cfg := server.Config{
		Policy:            pol,
		Workers:           *workers,
		Capacity:          *capacity,
		Join:              seeds,
		GossipFanout:      *fanout,
		RebalanceDisabled: !*rebalance,
	}
	if *backingDir != "" {
		store, err := backing.OpenDir(*backingDir)
		if err != nil {
			log.Fatalf("themisd: %v", err)
		}
		cfg.Backing = store
	}
	srv := server.New(ln, cfg)
	if err := srv.BootErr(); err != nil {
		log.Fatalf("themisd: %v", err)
	}
	log.Printf("themisd: serving on %s, policy %s, %d workers", srv.Addr(), pol, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("themisd: leaving cluster and shutting down (%d requests served)", srv.Served())
		srv.Leave()
		os.Exit(0)
	}()
	srv.Serve()
}
