// Command themisd runs a live ThemisIO burst-buffer server.
//
// Usage:
//
//	themisd -listen 127.0.0.1:7000 -policy size-fair
//	themisd -listen 127.0.0.1:7001 -policy size-fair -peers 127.0.0.1:7000
//
// The sharing policy is the single administrator-facing parameter the
// paper describes; any primitive or composite policy string parses
// (fifo, job-fair, user-fair, size-fair, priority-fair,
// user-then-size-fair, group-then-user-then-size-fair, ...).
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"themisio/internal/policy"
	"themisio/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "listen address")
	polStr := flag.String("policy", "size-fair", "sharing policy")
	workers := flag.Int("workers", 4, "worker pool size")
	capacity := flag.Int64("capacity", 256<<20, "storage device bytes")
	peers := flag.String("peers", "", "comma-separated peer server addresses for λ-sync")
	flag.Parse()

	pol, err := policy.Parse(*polStr)
	if err != nil {
		log.Fatalf("themisd: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("themisd: %v", err)
	}
	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	srv := server.New(ln, server.Config{
		Policy:   pol,
		Workers:  *workers,
		Capacity: *capacity,
		Peers:    peerList,
	})
	log.Printf("themisd: serving on %s, policy %s, %d workers", srv.Addr(), pol, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("themisd: shutting down (%d requests served)", srv.Served())
		srv.Close()
		os.Exit(0)
	}()
	srv.Serve()
}
