// `bench net ADDR` — the data-plane throughput probe: stream a bounded
// append workload at one server over a single instrumented binary
// connection and report what the wire actually did. The probe answers
// the first capacity-planning question (how fast is this link through
// the real codec, scheduler and shard, end to end) and the first
// zero-copy regression question (are large payloads still riding out
// as their own iovec, one write syscall per frame) without perf, and
// without a Prometheus server: the numbers come from the same
// transport.Stats counters the operator metrics endpoint exports.
package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"themisio/internal/client"
	"themisio/internal/cluster"
	"themisio/internal/policy"
	"themisio/internal/transport"
)

const (
	benchNetTotal  = 64 << 20  // bytes streamed by the probe
	benchNetFrame  = 256 << 10 // payload per MsgWrite frame
	benchNetWindow = 8         // appends in flight on the conn
)

// benchNetCmd runs the probe against addr. The scratch file is created
// and removed through the client library (so it gets a well-formed
// stripe layout); the measured stream itself is a raw pipelined
// MsgWrite sequence on its own instrumented connections. With conns >
// 1 the probe sweeps doubling connection counts up to conns — the CLI
// answer to "what does a pool of N buy this link" — splitting the same
// 64 MiB across the conns of each round.
func benchNetCmd(stdout io.Writer, addr string, conns int) error {
	job := policy.JobInfo{JobID: "themisctl-bench", UserID: "operator", GroupID: "staff", Nodes: 1}

	// Dial the whole fabric, not just addr: a create whose stripe set
	// diverges from the membership ring is itself a rebalance trigger
	// (the migrator would move the scratch file away mid-stream), so the
	// probe must pick a path the ring naturally places on addr.
	servers := []string{addr}
	if resp, err := controlExchange(addr, &transport.Request{Type: transport.MsgClusterStatus}); err == nil {
		var alive []string
		for _, m := range cluster.FromRecords(resp.Members) {
			if m.State == cluster.StateAlive {
				alive = append(alive, m.Addr)
			}
		}
		if len(alive) > 0 {
			servers = alive
		}
	}
	c, err := client.Dial(job, servers)
	if err != nil {
		return err
	}
	defer c.Close()

	var (
		path string
		f    *client.File
	)
	for i := 0; ; i++ {
		if i == 256 {
			return fmt.Errorf("bench net: no scratch path places on %s (draining?)", addr)
		}
		path = fmt.Sprintf("/.bench-net-%d-%d", os.Getpid(), i)
		if f, err = c.Open(path, true); err != nil {
			return err
		}
		set, _, err := c.Layout(path)
		if err != nil {
			return err
		}
		if len(set) > 0 && set[0] == addr {
			break
		}
		f.Close()
		if err := c.Unlink(path); err != nil {
			return err
		}
	}
	defer c.Unlink(path)
	defer f.Close()

	// Writes must echo the file's layout generation or a fabric whose
	// epoch has moved past the create answers stale-layout.
	layoutGen, err := layoutGenOf(addr, job, path)
	if err != nil {
		return err
	}

	if conns < 1 {
		conns = 1
	}
	sizes := []int{}
	for n := 1; n < conns; n *= 2 {
		sizes = append(sizes, n)
	}
	sizes = append(sizes, conns) // always end the sweep on the asked size
	for _, n := range sizes {
		if err := benchNetStream(stdout, addr, job, path, layoutGen, n); err != nil {
			return err
		}
	}
	return nil
}

// layoutGenOf stats path over a throwaway conn and returns the layout
// generation the streamed appends must echo.
func layoutGenOf(addr string, job policy.JobInfo, path string) (uint64, error) {
	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return 0, err
	}
	conn := transport.NewBinaryConn(raw)
	defer conn.Close()
	if err := conn.SendRequest(&transport.Request{
		Type: transport.MsgStat, Seq: 1, Job: job, Path: path,
	}); err != nil {
		return 0, err
	}
	resp, err := conn.RecvResponse()
	if err != nil {
		return 0, err
	}
	defer resp.Release()
	if resp.Err != "" {
		return 0, resp.Error()
	}
	return resp.LayoutGen, nil
}

// benchNetStream times one sweep round: the 64 MiB workload split
// evenly over nconns raw instrumented connections, each pipelining its
// share with a benchNetWindow in-flight budget — the wire shape a
// size-n connection pool produces.
func benchNetStream(stdout io.Writer, addr string, job policy.JobInfo, path string, layoutGen uint64, nconns int) error {
	st := &transport.Stats{}
	cs := make([]*transport.Conn, nconns)
	for i := range cs {
		raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return err
		}
		cs[i] = transport.NewBinaryConnStats(raw, st)
		defer cs[i].Close()
	}

	vec0, vecBytes0, flat0 := transport.IOStats()
	payload := make([]byte, benchNetFrame)
	for i := range payload {
		payload[i] = byte(i)
	}
	frames := benchNetTotal / benchNetFrame

	// Each conn windows its own appends: up to benchNetWindow unacked
	// frames keep its pipe full; a reader goroutine per conn drains acks
	// and surfaces the first server-side error.
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		oops error
	)
	fail := func(err error) {
		mu.Lock()
		if oops == nil {
			oops = err
		}
		mu.Unlock()
	}
	start := time.Now()
	for ci, conn := range cs {
		share := frames / nconns
		if ci < frames%nconns {
			share++
		}
		sem := make(chan struct{}, benchNetWindow)
		done := make(chan struct{})
		wg.Add(2)
		go func(conn *transport.Conn, share int) {
			defer wg.Done()
			defer close(done) // a dead reader must not strand the sender on sem
			for i := 0; i < share; i++ {
				resp, err := conn.RecvResponse()
				if err != nil {
					fail(err)
					return
				}
				if resp.Err != "" {
					fail(resp.Error())
				}
				resp.Release()
				<-sem
			}
		}(conn, share)
		go func(conn *transport.Conn, share int) {
			defer wg.Done()
			for i := 0; i < share; i++ {
				select {
				case sem <- struct{}{}:
				case <-done:
					return
				}
				if err := conn.SendRequest(&transport.Request{
					Type: transport.MsgWrite, Seq: uint64(i + 2), Job: job,
					Path: path, Data: payload, LayoutGen: layoutGen,
				}); err != nil {
					fail(err)
					conn.Close() // unblocks the reader
					return
				}
			}
		}(conn, share)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if oops != nil {
		return oops
	}

	// Distill: throughput from the wall clock, wire accounting from the
	// shared Stats rows, write-syscall economy from the process-wide
	// IOStats deltas (this probe's conns are the only data-plane senders
	// in the process, so the delta is its own).
	var outFrames, outBytes int64
	st.Snapshot(func(typ, dir string, f, b int64) {
		if typ == transport.MsgWrite.String() && dir == "out" {
			outFrames, outBytes = f, b
		}
	})
	vec1, vecBytes1, flat1 := transport.IOStats()
	writeCalls := (vec1 - vec0) + (flat1 - flat0)
	mbps := float64(benchNetTotal) / (1 << 20) / elapsed.Seconds()
	fmt.Fprintf(stdout, "%s\tconns=%d\t%d MiB in %d frames, %.1f MB/s\n",
		addr, nconns, benchNetTotal>>20, outFrames, mbps)
	fmt.Fprintf(stdout, "%s\tconns=%d\twire %d bytes (%.1f bytes/frame overhead), %.2f write syscalls/frame, %d/%d frames vectored (%d MiB as iovecs)\n",
		addr, nconns, outBytes,
		float64(outBytes-int64(frames)*benchNetFrame)/float64(frames),
		float64(writeCalls)/float64(frames),
		vec1-vec0, writeCalls, (vecBytes1-vecBytes0)>>20)
	return nil
}
