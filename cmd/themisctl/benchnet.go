// `bench net ADDR` — the data-plane throughput probe: stream a bounded
// append workload at one server over a single instrumented binary
// connection and report what the wire actually did. The probe answers
// the first capacity-planning question (how fast is this link through
// the real codec, scheduler and shard, end to end) and the first
// zero-copy regression question (are large payloads still riding out
// as their own iovec, one write syscall per frame) without perf, and
// without a Prometheus server: the numbers come from the same
// transport.Stats counters the operator metrics endpoint exports.
package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"themisio/internal/client"
	"themisio/internal/cluster"
	"themisio/internal/policy"
	"themisio/internal/transport"
)

const (
	benchNetTotal  = 64 << 20  // bytes streamed by the probe
	benchNetFrame  = 256 << 10 // payload per MsgWrite frame
	benchNetWindow = 8         // appends in flight on the conn
)

// benchNetCmd runs the probe against addr. The scratch file is created
// and removed through the client library (so it gets a well-formed
// stripe layout); the measured stream itself is a raw pipelined
// MsgWrite sequence on its own instrumented connection.
func benchNetCmd(stdout io.Writer, addr string) error {
	job := policy.JobInfo{JobID: "themisctl-bench", UserID: "operator", GroupID: "staff", Nodes: 1}

	// Dial the whole fabric, not just addr: a create whose stripe set
	// diverges from the membership ring is itself a rebalance trigger
	// (the migrator would move the scratch file away mid-stream), so the
	// probe must pick a path the ring naturally places on addr.
	servers := []string{addr}
	if resp, err := controlExchange(addr, &transport.Request{Type: transport.MsgClusterStatus}); err == nil {
		var alive []string
		for _, m := range cluster.FromRecords(resp.Members) {
			if m.State == cluster.StateAlive {
				alive = append(alive, m.Addr)
			}
		}
		if len(alive) > 0 {
			servers = alive
		}
	}
	c, err := client.Dial(job, servers)
	if err != nil {
		return err
	}
	defer c.Close()

	var (
		path string
		fd   int
	)
	for i := 0; ; i++ {
		if i == 256 {
			return fmt.Errorf("bench net: no scratch path places on %s (draining?)", addr)
		}
		path = fmt.Sprintf("/.bench-net-%d-%d", os.Getpid(), i)
		if fd, err = c.Open(path, true); err != nil {
			return err
		}
		set, _, err := c.Layout(path)
		if err != nil {
			return err
		}
		if len(set) > 0 && set[0] == addr {
			break
		}
		c.CloseFd(fd)
		if err := c.Unlink(path); err != nil {
			return err
		}
	}
	defer c.Unlink(path)
	defer c.CloseFd(fd)

	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	st := &transport.Stats{}
	conn := transport.NewBinaryConnStats(raw, st)
	defer conn.Close()

	// Writes must echo the file's layout generation or a fabric whose
	// epoch has moved past the create answers stale-layout; the stat
	// also warms the conn before the timed stream.
	if err := conn.SendRequest(&transport.Request{
		Type: transport.MsgStat, Seq: 1, Job: job, Path: path,
	}); err != nil {
		return err
	}
	statResp, err := conn.RecvResponse()
	if err != nil {
		return err
	}
	if statResp.Err != "" {
		return statResp.Error()
	}
	layoutGen := statResp.LayoutGen
	statResp.Release()

	vec0, vecBytes0, flat0 := transport.IOStats()
	payload := make([]byte, benchNetFrame)
	for i := range payload {
		payload[i] = byte(i)
	}
	frames := benchNetTotal / benchNetFrame

	// Window the appends: up to benchNetWindow unacked frames keep the
	// pipe full; the reader goroutine drains acks and surfaces the
	// first server-side error.
	sem := make(chan struct{}, benchNetWindow)
	done := make(chan struct{})
	var (
		wg      sync.WaitGroup
		readErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done) // a dead reader must not strand the sender on sem
		for i := 0; i < frames; i++ {
			resp, err := conn.RecvResponse()
			if err != nil {
				readErr = err
				return
			}
			if resp.Err != "" && readErr == nil {
				readErr = resp.Error()
			}
			resp.Release()
			<-sem
		}
	}()
	start := time.Now()
	var sendErr error
send:
	for i := 0; i < frames; i++ {
		select {
		case sem <- struct{}{}:
		case <-done:
			break send
		}
		if err := conn.SendRequest(&transport.Request{
			Type: transport.MsgWrite, Seq: uint64(i + 2), Job: job,
			Path: path, Data: payload, LayoutGen: layoutGen,
		}); err != nil {
			sendErr = err
			conn.Close() // unblocks the reader
			break
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if sendErr != nil {
		return sendErr
	}
	if readErr != nil {
		return readErr
	}

	// Distill: throughput from the wall clock, wire accounting from the
	// Stats rows, write-syscall economy from the process-wide IOStats
	// deltas (this probe's conn is the only data-plane sender in the
	// process, so the delta is its own).
	var outFrames, outBytes int64
	st.Snapshot(func(typ, dir string, f, b int64) {
		if typ == transport.MsgWrite.String() && dir == "out" {
			outFrames, outBytes = f, b
		}
	})
	vec1, vecBytes1, flat1 := transport.IOStats()
	writeCalls := (vec1 - vec0) + (flat1 - flat0)
	mbps := float64(benchNetTotal) / (1 << 20) / elapsed.Seconds()
	fmt.Fprintf(stdout, "%s\t%d MiB in %d frames, %.1f MB/s\n",
		addr, benchNetTotal>>20, outFrames, mbps)
	fmt.Fprintf(stdout, "%s\twire %d bytes (%.1f bytes/frame overhead), %.2f write syscalls/frame, %d/%d frames vectored (%d MiB as iovecs)\n",
		addr, outBytes,
		float64(outBytes-int64(frames)*benchNetFrame)/float64(frames),
		float64(writeCalls)/float64(frames),
		vec1-vec0, writeCalls, (vecBytes1-vecBytes0)>>20)
	return nil
}
