package main

import (
	"bytes"
	"net"
	"net/http/httptest"
	"strings"
	"testing"

	"themisio/internal/obsv"
	"themisio/internal/policy"
	"themisio/internal/server"
)

// deadAddr returns an address nothing is listening on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// Every subcommand must exit non-zero and print the error when its RPC
// fails against an unreachable server — the regression that used to
// let CI scripts treat a dead cluster as success.
func TestExitCodeOnUnreachableServer(t *testing.T) {
	addr := deadAddr(t)
	cases := [][]string{
		{"-servers", addr, "cluster", "status"},
		{"-servers", addr, "cluster", "drain"},
		{"-servers", addr, "rebalance", "status"},
		{"-servers", addr, "flush"},
		{"-servers", addr, "policy", "set", "size-fair"},
		{"-servers", addr, "policy", "status"},
		{"-servers", addr, "stat", "/x"},
		{"-servers", addr, "put", "/x"},
		{"-servers", addr, "get", "/x"},
		{"-servers", addr, "ls", "/"},
		{"-servers", addr, "rm", "/x"},
		{"-servers", addr, "mkdir", "/d"},
	}
	for _, argv := range cases {
		var out, errOut bytes.Buffer
		code := run(argv, strings.NewReader(""), &out, &errOut)
		if code == 0 {
			t.Errorf("%v exited 0 against an unreachable server", argv)
		}
		if errOut.Len() == 0 {
			t.Errorf("%v printed no error", argv)
		}
	}
}

// `metrics` against an unreachable endpoint exits non-zero; against a
// live registry-backed endpoint it prints the exposition, and a prefix
// argument filters to that family's lines.
func TestMetricsCommand(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"metrics", deadAddr(t)}, strings.NewReader(""), &out, &errOut); code == 0 {
		t.Fatal("metrics against an unreachable endpoint exited 0")
	}
	if errOut.Len() == 0 {
		t.Fatal("metrics against an unreachable endpoint printed no error")
	}

	reg := obsv.NewRegistry()
	reg.Counter("themis_test_total", "A counter.").Add(7)
	reg.Gauge("other_gauge", "A gauge.").Set(1)
	ts := httptest.NewServer(obsv.Mux(reg, func() (bool, string) { return true, "" }))
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	out.Reset()
	errOut.Reset()
	if code := run([]string{"metrics", addr}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("metrics exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "themis_test_total 7") || !strings.Contains(out.String(), "other_gauge 1") {
		t.Fatalf("metrics output: %q", out.String())
	}

	out.Reset()
	if code := run([]string{"metrics", addr, "themis_"}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("filtered metrics exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "themis_test_total 7") || strings.Contains(out.String(), "other_gauge") {
		t.Fatalf("filtered metrics output: %q", out.String())
	}
}

// Usage errors exit 2.
func TestExitCodeOnUsageErrors(t *testing.T) {
	for _, argv := range [][]string{
		{},
		{"-no-such-flag"},
		{"stat"},               // missing path
		{"no-such-cmd", "/x"},  // unknown command
		{"rebalance", "bogus"}, // unknown subcommand
		{"policy", "bogus"},    // unknown subcommand
		{"policy", "set"},      // missing policy string
	} {
		var out, errOut bytes.Buffer
		if code := run(argv, strings.NewReader(""), &out, &errOut); code != 2 {
			t.Errorf("%v exited %d, want 2", argv, code)
		}
	}
}

// Against a live server: policy set round-trips the canonical string
// and epoch, a bad policy string is refused with the parser's typed
// error and a non-zero exit, and policy status prints the report.
func TestPolicyCommandsLive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(ln, server.Config{Policy: policy.SizeFair, Quiet: true})
	go srv.Serve()
	defer srv.Close()
	addr := ln.Addr().String()

	var out, errOut bytes.Buffer
	if code := run([]string{"-servers", addr, "policy", "set", "user-then-size-fair"},
		strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("policy set exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "user-then-size-fair") || !strings.Contains(out.String(), "epoch 1") {
		t.Fatalf("policy set output: %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-servers", addr, "policy", "set", "totally-bogus"},
		strings.NewReader(""), &out, &errOut); code == 0 {
		t.Fatal("bogus policy string must exit non-zero")
	}
	if !strings.Contains(errOut.String(), "policy") {
		t.Fatalf("bogus policy error output: %q", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-servers", addr, "policy", "status"},
		strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("policy status exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "policy size-fair") {
		// The set above is applied at the next λ (500 ms default); right
		// after boot the server still reports its boot policy string.
		t.Fatalf("policy status output: %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-servers", addr, "cluster", "status"},
		strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("cluster status exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "1 members") {
		t.Fatalf("cluster status output: %q", out.String())
	}
}
