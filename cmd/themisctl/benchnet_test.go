package main

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"themisio/internal/policy"
	"themisio/internal/server"
)

// `bench net` against a live in-process server: exits 0, reports a
// positive throughput, accounts every frame, and leaves no scratch
// file behind.
func TestBenchNetLive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(ln, server.Config{Policy: policy.SizeFair, Quiet: true})
	go srv.Serve()
	defer srv.Close()
	addr := ln.Addr().String()

	var out, errOut bytes.Buffer
	if code := run([]string{"bench", "net", addr}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("bench net exited %d: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "MB/s") || !strings.Contains(text, "syscalls/frame") {
		t.Fatalf("bench net output missing throughput or syscall report: %q", text)
	}
	if !strings.Contains(text, "frames") || strings.Contains(text, "0 frames,") {
		t.Fatalf("bench net accounted no frames: %q", text)
	}
	// The scratch file is unlinked on the way out.
	var ls, lsErr bytes.Buffer
	if code := run([]string{"-servers", addr, "ls", "/"}, strings.NewReader(""), &ls, &lsErr); code != 0 {
		t.Fatalf("ls exited %d: %s", code, lsErr.String())
	}
	if strings.Contains(ls.String(), ".bench-net") {
		t.Fatalf("scratch file left behind: %q", ls.String())
	}
}

// `bench net -conns 4` sweeps doubling connection counts and prints a
// throughput row per pool size.
func TestBenchNetConnsSweep(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(ln, server.Config{Policy: policy.SizeFair, Quiet: true})
	go srv.Serve()
	defer srv.Close()
	addr := ln.Addr().String()

	var out, errOut bytes.Buffer
	if code := run([]string{"-conns", "4", "bench", "net", addr}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("bench net -conns 4 exited %d: %s", code, errOut.String())
	}
	text := out.String()
	for _, row := range []string{"conns=1\t", "conns=2\t", "conns=4\t"} {
		if !strings.Contains(text, row) {
			t.Fatalf("sweep output missing %q: %q", row, text)
		}
	}
	if strings.Count(text, "MB/s") != 3 {
		t.Fatalf("want one throughput row per sweep size: %q", text)
	}
}

// An unreachable target exits non-zero with the dial error on stderr,
// and malformed invocations are usage errors.
func TestBenchNetErrors(t *testing.T) {
	addr := deadAddr(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"bench", "net", addr}, strings.NewReader(""), &out, &errOut); code == 0 {
		t.Fatal("bench net against a dead server exited 0")
	}
	if errOut.Len() == 0 {
		t.Fatal("bench net printed no error")
	}
	for _, argv := range [][]string{{"bench", "net"}, {"bench", "bogus", "x"}} {
		out.Reset()
		errOut.Reset()
		if code := run(argv, strings.NewReader(""), &out, &errOut); code != 2 {
			t.Fatalf("%v exited %d, want 2", argv, code)
		}
	}
}

// The -stripe-unit flag accepts byte counts and "auto", and refuses
// garbage with a usage exit.
func TestParseStripeUnit(t *testing.T) {
	if u, err := parseStripeUnit("0"); err != nil || u != 0 {
		t.Fatalf("0: u=%d err=%v", u, err)
	}
	if u, err := parseStripeUnit("262144"); err != nil || u != 262144 {
		t.Fatalf("262144: u=%d err=%v", u, err)
	}
	if u, err := parseStripeUnit("auto"); err != nil || u >= 0 {
		t.Fatalf("auto: u=%d err=%v (want the AutoStripeUnit sentinel)", u, err)
	}
	for _, bad := range []string{"-5", "64k", ""} {
		if _, err := parseStripeUnit(bad); err == nil {
			t.Fatalf("%q parsed without error", bad)
		}
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-stripe-unit", "64k", "ls", "/"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("bad -stripe-unit exited %d, want 2", code)
	}
}

// The -conns-per-server flag accepts counts and "auto", and refuses
// garbage with a usage exit.
func TestParseConnsPerServer(t *testing.T) {
	if n, err := parseConnsPerServer("0"); err != nil || n != 0 {
		t.Fatalf("0: n=%d err=%v", n, err)
	}
	if n, err := parseConnsPerServer("4"); err != nil || n != 4 {
		t.Fatalf("4: n=%d err=%v", n, err)
	}
	if n, err := parseConnsPerServer("auto"); err != nil || n >= 0 {
		t.Fatalf("auto: n=%d err=%v (want the AutoConnsPerServer sentinel)", n, err)
	}
	for _, bad := range []string{"-5", "two", ""} {
		if _, err := parseConnsPerServer(bad); err == nil {
			t.Fatalf("%q parsed without error", bad)
		}
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-conns-per-server", "two", "ls", "/"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("bad -conns-per-server exited %d, want 2", code)
	}
}
