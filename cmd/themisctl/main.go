// Command themisctl is a small client CLI against live themisd servers:
// put/get/ls/stat/rm through the POSIX-style client library, under an
// explicit job identity so policy behaviour can be exercised by hand,
// plus cluster-fabric operator commands.
//
// Usage:
//
//	themisctl -servers 127.0.0.1:7000 -job demo -user alice -nodes 4 mkdir /data
//	themisctl -servers 127.0.0.1:7000 -stripes 4 put /data/x < local.bin
//	themisctl -servers 127.0.0.1:7000 -stripes 4 get /data/x > out.bin
//	themisctl -servers 127.0.0.1:7000 ls /data
//	themisctl -servers 127.0.0.1:7000 stat /data/x
//	themisctl -servers 127.0.0.1:7000 rm /data/x
//	themisctl -servers 127.0.0.1:7000 cluster status
//	themisctl -servers 127.0.0.1:7001 cluster drain
//	themisctl -servers 127.0.0.1:7000,127.0.0.1:7001 rebalance status
//	themisctl -servers 127.0.0.1:7000,127.0.0.1:7001 flush
//	themisctl -servers 127.0.0.1:7000 policy set size-fair
//	themisctl -servers 127.0.0.1:7000,127.0.0.1:7001 policy status
//	themisctl metrics 127.0.0.1:9100
//	themisctl metrics 127.0.0.1:9100 themis_share_
//	themisctl bench net 127.0.0.1:7000
//	themisctl -servers 127.0.0.1:7000 -stripes 4 -stripe-unit auto put /data/x < local.bin
//
// `cluster status` prints the membership table as seen by the first
// server; `cluster drain` asks that server to stop owning ring segments
// ahead of a graceful shutdown; `rebalance status` prints each listed
// server's stripe-migration progress after a member joins; `flush`
// forces every listed server to stage all dirty data out to its
// backing store before returning (the durability barrier to run before
// maintenance).
//
// `policy set` installs a new cluster-wide sharing policy through the
// first listed server — the live hot-swap: the policy epoch bumps,
// gossip carries the new version to every member, and each server
// recompiles at its next λ without a restart or a dropped request.
// `policy status` prints, per listed server, the policy it is
// enforcing (string + applied epoch) and each sharing entity's
// compiled token share versus measured serviced-byte share with the
// convergence residual. By default only the 20 worst entities by
// |residual| are shown (`-top N` adjusts, 0 shows all; `-kind
// {job,user,group}` restricts to one entity kind) — the filter is
// applied server-side, so a 100k-entity fabric answers with a
// screenful. See docs/OPERATIONS.md for the runbook.
//
// `metrics ADDR [PREFIX]` scrapes the operator endpoint a server runs
// with -metrics-addr and prints the Prometheus exposition (optionally
// only the lines for metric names starting with PREFIX) — the one-shot
// debugging scrape for a fabric without a Prometheus server at hand.
//
// `bench net ADDR` streams a bounded append workload at one server
// over an instrumented connection and prints the achieved MB/s, the
// wire overhead per frame, and the write-syscall economy of the
// scatter-gather send path (see benchnet.go).
//
// `-stripe-unit auto` sizes each created file's stripe unit from the
// client's measured bandwidth-delay product instead of a fixed byte
// count.
//
// Every subcommand exits non-zero when its RPC fails — an unreachable
// server, a refused drain, an unparseable policy string — so shell
// scripts and CI steps can gate on it.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"themisio/internal/client"
	"themisio/internal/cluster"
	"themisio/internal/policy"
	"themisio/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, executes one
// subcommand, and returns the process exit code (0 success, 1 a failed
// RPC or file operation, 2 a usage error). Every error is printed to
// stderr — including the typed wire errors a server answers with — so
// a failing CI script shows why.
func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("themisctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	servers := fs.String("servers", "127.0.0.1:7000", "comma-separated server addresses")
	jobID := fs.String("job", "themisctl", "job id embedded in requests")
	user := fs.String("user", "operator", "user id")
	group := fs.String("group", "staff", "group id")
	nodes := fs.Int("nodes", 1, "job size in nodes")
	stripes := fs.Int("stripes", 1, "servers each file's data spans")
	stripeUnitStr := fs.String("stripe-unit", "0",
		"bytes per stripe chunk (0 = default, 'auto' = size from the measured bandwidth-delay product)")
	connsPerServerStr := fs.String("conns-per-server", "0",
		"pooled connections per server (0 = default, 'auto' = scale with -stripes)")
	benchConns := fs.Int("conns", 1, "bench net: sweep doubling connection counts up to N")
	topN := fs.Int("top", 20, "policy status: show only the top N entities by |residual| (0 = all)")
	kind := fs.String("kind", "", "policy status: restrict rows to one entity kind (job, user or group; empty = all)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	stripeUnit, err := parseStripeUnit(*stripeUnitStr)
	if err != nil {
		fmt.Fprintf(stderr, "themisctl: -stripe-unit: %v\n", err)
		return 2
	}
	connsPerServer, err := parseConnsPerServer(*connsPerServerStr)
	if err != nil {
		fmt.Fprintf(stderr, "themisctl: -conns-per-server: %v\n", err)
		return 2
	}
	args := fs.Args()
	addrs := strings.Split(*servers, ",")

	fail := func(context string, err error) int {
		fmt.Fprintf(stderr, "themisctl: %s: %v\n", context, err)
		return 1
	}
	usage := func(context string, err error) int {
		fmt.Fprintf(stderr, "themisctl: %s: %v\n", context, err)
		return 2
	}

	if len(args) == 1 && args[0] == "flush" {
		for _, addr := range addrs {
			if err := flushCmd(addr); err != nil {
				return fail("flush "+addr, err)
			}
			fmt.Fprintf(stdout, "%s\tflushed\n", addr)
		}
		return 0
	}
	if len(args) < 2 {
		fmt.Fprintln(stderr,
			"usage: themisctl [flags] {put|get|ls|stat|rm|mkdir} PATH | cluster {status|drain} | rebalance status | policy {set STRING|status} | metrics ADDR [PREFIX] | bench net ADDR | flush")
		return 2
	}
	cmd, path := args[0], args[1]

	switch cmd {
	case "bench":
		if path != "net" || len(args) < 3 {
			return usage("bench", fmt.Errorf("usage: bench net ADDR"))
		}
		if err := benchNetCmd(stdout, args[2], *benchConns); err != nil {
			return fail("bench net "+args[2], err)
		}
		return 0
	case "metrics":
		var prefix string
		if len(args) > 2 {
			prefix = args[2]
		}
		if err := metricsCmd(stdout, path, prefix); err != nil {
			return fail("metrics "+path, err)
		}
		return 0
	case "cluster":
		if err := clusterCmd(stdout, addrs[0], path); err != nil {
			return fail("cluster "+path, err)
		}
		return 0
	case "rebalance":
		if path != "status" {
			return usage("rebalance", fmt.Errorf("unknown subcommand %q (want status)", path))
		}
		for _, addr := range addrs {
			if err := rebalanceStatusCmd(stdout, addr); err != nil {
				return fail("rebalance status "+addr, err)
			}
		}
		return 0
	case "policy":
		switch path {
		case "set":
			if len(args) < 3 {
				return usage("policy set", fmt.Errorf("missing policy string"))
			}
			if err := policySetCmd(stdout, addrs[0], args[2]); err != nil {
				return fail("policy set "+args[2], err)
			}
			return 0
		case "status":
			// -top/-kind read naturally after the subcommand
			// (`policy status -top 5 -kind user`), but the global parse
			// stops at the first positional arg — re-parse the tail so
			// both positions work.
			if len(args) > 2 {
				if err := fs.Parse(args[2:]); err != nil {
					return 2
				}
			}
			if *kind != "" && *kind != "all" && *kind != "job" && *kind != "user" && *kind != "group" {
				return usage("policy status", fmt.Errorf("unknown -kind %q (want job, user or group)", *kind))
			}
			for _, addr := range addrs {
				if err := policyStatusCmd(stdout, addr, *topN, *kind); err != nil {
					return fail("policy status "+addr, err)
				}
			}
			return 0
		default:
			return usage("policy", fmt.Errorf("unknown subcommand %q (want set or status)", path))
		}
	case "put", "get", "ls", "stat", "rm", "mkdir":
		// Data commands, handled below after dialing.
	default:
		return usage(cmd, fmt.Errorf("unknown command"))
	}

	c, err := client.DialOpts(policy.JobInfo{
		JobID: *jobID, UserID: *user, GroupID: *group, Nodes: *nodes,
	}, addrs, client.Options{Stripes: *stripes, StripeUnit: stripeUnit, ConnsPerServer: connsPerServer})
	if err != nil {
		return fail(cmd+" "+path, err)
	}
	defer c.Close()

	switch cmd {
	case "mkdir":
		err = c.Mkdir(path)
	case "put":
		var data []byte
		data, err = io.ReadAll(stdin)
		if err != nil {
			break
		}
		var f *client.File
		f, err = c.OpenContext(context.Background(), path, true)
		if err != nil {
			break
		}
		_, err = f.Write(data)
		f.Close()
	case "get":
		var f *client.File
		f, err = c.OpenContext(context.Background(), path, false)
		if err != nil {
			break
		}
		if _, err = io.Copy(stdout, f); err != nil {
			// A mid-stream read error used to be swallowed here: the
			// command printed a truncated file and exited 0, so a script
			// could never tell a short get from a whole one.
			f.Close()
			break
		}
		err = f.Close()
	case "ls":
		var names []string
		names, err = c.Readdir(path)
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
	case "stat":
		var size int64
		var isDir bool
		size, isDir, err = c.Stat(path)
		if err == nil {
			kind := "file"
			if isDir {
				kind = "dir"
			}
			fmt.Fprintf(stdout, "%s\t%s\t%d bytes\n", path, kind, size)
		}
	case "rm":
		err = c.Unlink(path)
	}
	if err != nil {
		return fail(cmd+" "+path, err)
	}
	return 0
}

// parseStripeUnit parses the -stripe-unit flag: a byte count, or
// "auto" for BDP-adaptive unit sizing (client.AutoStripeUnit).
func parseStripeUnit(s string) (int64, error) {
	if strings.EqualFold(s, "auto") {
		return client.AutoStripeUnit, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a byte count or 'auto', got %q", s)
	}
	return n, nil
}

// parseConnsPerServer parses the -conns-per-server flag: a count, or
// "auto" to scale the pool with the stripe width
// (client.AutoConnsPerServer).
func parseConnsPerServer(s string) (int, error) {
	if strings.EqualFold(s, "auto") {
		return client.AutoConnsPerServer, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a connection count or 'auto', got %q", s)
	}
	return n, nil
}

// controlExchange performs one control request/response round trip with
// a server (the operator commands bypass the client library).
func controlExchange(addr string, req *transport.Request) (*transport.Response, error) {
	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	conn := transport.NewConn(raw)
	defer conn.Close()
	if req.Seq == 0 {
		req.Seq = 1
	}
	if err := conn.SendRequest(req); err != nil {
		return nil, err
	}
	resp, err := conn.RecvResponse()
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, resp.Error()
	}
	return resp, nil
}

// metricsCmd scrapes one server's operator endpoint (the address given
// to themisd -metrics-addr, not the data-plane listen address) and
// prints the exposition, optionally filtered to lines whose metric name
// starts with prefix. An unreachable endpoint or a non-200 answer is an
// error, so scripts can gate on the endpoint being up.
func metricsCmd(w io.Writer, addr, prefix string) error {
	resp, err := (&http.Client{Timeout: 5 * time.Second}).Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	if prefix == "" {
		_, err = io.Copy(w, resp.Body)
		return err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		name := line
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			name = line[len("# HELP "):]
		}
		if strings.HasPrefix(name, prefix) {
			fmt.Fprintln(w, line)
		}
	}
	return sc.Err()
}

// flushCmd forces one server to stage out every dirty byte. The wait is
// bounded server-side by its flush timeout.
func flushCmd(addr string) error {
	_, err := controlExchange(addr, &transport.Request{Type: transport.MsgFlush})
	return err
}

// rebalanceStatusCmd prints one server's stripe-migration progress:
// lifetime files/bytes moved, error and pending counts, and the ring
// epoch the server's layouts were last reconciled against (compare
// with `cluster status`'s epoch — equal means settled).
func rebalanceStatusCmd(w io.Writer, addr string) error {
	resp, err := controlExchange(addr, &transport.Request{Type: transport.MsgRebalanceStatus})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\treconciled-epoch %d\n", addr, resp.Epoch)
	for _, line := range resp.Names {
		fmt.Fprintf(w, "%s\t%s\n", addr, line)
	}
	return nil
}

// policySetCmd installs a new cluster-wide sharing policy through one
// member. The member validates the string, so a typo comes back as the
// parser's error before anything changes anywhere.
func policySetCmd(w io.Writer, addr, policyStr string) error {
	resp, err := controlExchange(addr, &transport.Request{
		Type: transport.MsgPolicySet, PolicyStr: policyStr,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\tpolicy %s\tepoch %d\n", addr, resp.PolicyStr, resp.PolicyEpoch)
	return nil
}

// policyStatusCmd prints one server's enforced policy and per-entity
// fairness report: compiled token share vs measured serviced-byte
// share with the convergence residual, per job, user and group. After
// a `policy set`, every server converging to the new epoch with small
// residuals is the live signal the swap has landed.
//
// top and kind page the report server-side (top N by |residual|,
// optionally one entity kind) so a 100k-entity fabric answers with a
// screenful, not the world; the same filter is re-applied client-side
// as a fallback for older servers that ignore the request fields.
func policyStatusCmd(w io.Writer, addr string, top int, kind string) error {
	resp, err := controlExchange(addr, &transport.Request{
		Type: transport.MsgShareReport, ShareTopN: top, ShareKind: kind,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\tpolicy %s\tapplied-epoch %d\tscheduler-epoch %d\n",
		addr, resp.PolicyStr, resp.PolicyEpoch, resp.Epoch)
	shares := resp.Shares
	if kind != "" && kind != "all" {
		kept := shares[:0]
		for _, s := range shares {
			if s.Kind == kind {
				kept = append(kept, s)
			}
		}
		shares = kept
	}
	if top > 0 && len(shares) > top {
		sort.SliceStable(shares, func(i, k int) bool {
			return math.Abs(shares[i].Residual()) > math.Abs(shares[k].Residual())
		})
		shares = shares[:top]
	}
	for _, s := range shares {
		fmt.Fprintf(w, "%s\t%-5s %-24s compiled %.3f measured %.3f residual %+.3f (%d bytes)\n",
			addr, s.Kind, s.ID, s.Compiled, s.Measured, s.Residual(), s.Bytes)
	}
	return nil
}

// clusterCmd talks the fabric control protocol directly to one server.
func clusterCmd(w io.Writer, addr, sub string) error {
	var typ transport.MsgType
	switch sub {
	case "status":
		typ = transport.MsgClusterStatus
	case "drain":
		typ = transport.MsgDrain
	default:
		return fmt.Errorf("unknown subcommand %q (want status or drain)", sub)
	}
	resp, err := controlExchange(addr, &transport.Request{Type: typ})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "epoch %d, %d members (as seen by %s)\n", resp.Epoch, len(resp.Members), addr)
	for _, m := range cluster.FromRecords(resp.Members) {
		fmt.Fprintf(w, "%s\t%s\tincarnation %d\n", m.Addr, m.State, m.Incarnation)
	}
	return nil
}
