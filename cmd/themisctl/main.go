// Command themisctl is a small client CLI against live themisd servers:
// put/get/ls/stat/rm through the POSIX-style client library, under an
// explicit job identity so policy behaviour can be exercised by hand,
// plus cluster-fabric operator commands.
//
// Usage:
//
//	themisctl -servers 127.0.0.1:7000 -job demo -user alice -nodes 4 mkdir /data
//	themisctl -servers 127.0.0.1:7000 -stripes 4 put /data/x < local.bin
//	themisctl -servers 127.0.0.1:7000 -stripes 4 get /data/x > out.bin
//	themisctl -servers 127.0.0.1:7000 ls /data
//	themisctl -servers 127.0.0.1:7000 stat /data/x
//	themisctl -servers 127.0.0.1:7000 rm /data/x
//	themisctl -servers 127.0.0.1:7000 cluster status
//	themisctl -servers 127.0.0.1:7001 cluster drain
//	themisctl -servers 127.0.0.1:7000,127.0.0.1:7001 rebalance status
//	themisctl -servers 127.0.0.1:7000,127.0.0.1:7001 flush
//
// `cluster status` prints the membership table as seen by the first
// server; `cluster drain` asks that server to stop owning ring segments
// ahead of a graceful shutdown; `rebalance status` prints each listed
// server's stripe-migration progress after a member joins; `flush`
// forces every listed server to stage all dirty data out to its
// backing store before returning (the durability barrier to run before
// maintenance).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"themisio/internal/client"
	"themisio/internal/cluster"
	"themisio/internal/policy"
	"themisio/internal/transport"
)

func main() {
	servers := flag.String("servers", "127.0.0.1:7000", "comma-separated server addresses")
	jobID := flag.String("job", "themisctl", "job id embedded in requests")
	user := flag.String("user", "operator", "user id")
	group := flag.String("group", "staff", "group id")
	nodes := flag.Int("nodes", 1, "job size in nodes")
	stripes := flag.Int("stripes", 1, "servers each file's data spans")
	stripeUnit := flag.Int64("stripe-unit", 0, "bytes per stripe chunk (0 = default)")
	flag.Parse()
	args := flag.Args()
	addrs := strings.Split(*servers, ",")

	if len(args) == 1 && args[0] == "flush" {
		for _, addr := range addrs {
			if err := flushCmd(addr); err != nil {
				log.Fatalf("themisctl: flush %s: %v", addr, err)
			}
			fmt.Printf("%s\tflushed\n", addr)
		}
		return
	}
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr,
			"usage: themisctl [flags] {put|get|ls|stat|rm|mkdir} PATH | cluster {status|drain} | rebalance status | flush")
		os.Exit(2)
	}
	cmd, path := args[0], args[1]

	if cmd == "cluster" {
		if err := clusterCmd(addrs[0], path); err != nil {
			log.Fatalf("themisctl: cluster %s: %v", path, err)
		}
		return
	}
	if cmd == "rebalance" {
		if path != "status" {
			log.Fatalf("themisctl: rebalance: unknown subcommand %q (want status)", path)
		}
		for _, addr := range addrs {
			if err := rebalanceStatusCmd(addr); err != nil {
				log.Fatalf("themisctl: rebalance status %s: %v", addr, err)
			}
		}
		return
	}

	c, err := client.DialOpts(policy.JobInfo{
		JobID: *jobID, UserID: *user, GroupID: *group, Nodes: *nodes,
	}, addrs, client.Options{Stripes: *stripes, StripeUnit: *stripeUnit})
	if err != nil {
		log.Fatalf("themisctl: %v", err)
	}
	defer c.Close()

	switch cmd {
	case "mkdir":
		err = c.Mkdir(path)
	case "put":
		var data []byte
		data, err = io.ReadAll(os.Stdin)
		if err != nil {
			break
		}
		var fd int
		fd, err = c.Open(path, true)
		if err != nil {
			break
		}
		_, err = c.Write(fd, data)
	case "get":
		var fd int
		fd, err = c.Open(path, false)
		if err != nil {
			break
		}
		buf := make([]byte, 1<<20)
		for {
			n, rerr := c.Read(fd, buf)
			if n > 0 {
				os.Stdout.Write(buf[:n])
			}
			if rerr != nil || n == 0 {
				break
			}
		}
	case "ls":
		var names []string
		names, err = c.Readdir(path)
		for _, n := range names {
			fmt.Println(n)
		}
	case "stat":
		var size int64
		var isDir bool
		size, isDir, err = c.Stat(path)
		if err == nil {
			kind := "file"
			if isDir {
				kind = "dir"
			}
			fmt.Printf("%s\t%s\t%d bytes\n", path, kind, size)
		}
	case "rm":
		err = c.Unlink(path)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		log.Fatalf("themisctl: %s %s: %v", cmd, path, err)
	}
}

// controlExchange performs one control request/response round trip with
// a server (the operator commands bypass the client library).
func controlExchange(addr string, typ transport.MsgType) (*transport.Response, error) {
	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	conn := transport.NewConn(raw)
	defer conn.Close()
	if err := conn.SendRequest(&transport.Request{Type: typ, Seq: 1}); err != nil {
		return nil, err
	}
	resp, err := conn.RecvResponse()
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, resp.Error()
	}
	return resp, nil
}

// flushCmd forces one server to stage out every dirty byte. The wait is
// bounded server-side by its flush timeout.
func flushCmd(addr string) error {
	_, err := controlExchange(addr, transport.MsgFlush)
	return err
}

// rebalanceStatusCmd prints one server's stripe-migration progress:
// lifetime files/bytes moved, error and pending counts, and the ring
// epoch the server's layouts were last reconciled against (compare
// with `cluster status`'s epoch — equal means settled).
func rebalanceStatusCmd(addr string) error {
	resp, err := controlExchange(addr, transport.MsgRebalanceStatus)
	if err != nil {
		return err
	}
	fmt.Printf("%s\treconciled-epoch %d\n", addr, resp.Epoch)
	for _, line := range resp.Names {
		fmt.Printf("%s\t%s\n", addr, line)
	}
	return nil
}

// clusterCmd talks the fabric control protocol directly to one server.
func clusterCmd(addr, sub string) error {
	var typ transport.MsgType
	switch sub {
	case "status":
		typ = transport.MsgClusterStatus
	case "drain":
		typ = transport.MsgDrain
	default:
		return fmt.Errorf("unknown subcommand %q (want status or drain)", sub)
	}
	resp, err := controlExchange(addr, typ)
	if err != nil {
		return err
	}
	fmt.Printf("epoch %d, %d members (as seen by %s)\n", resp.Epoch, len(resp.Members), addr)
	for _, m := range cluster.FromRecords(resp.Members) {
		fmt.Printf("%s\t%s\tincarnation %d\n", m.Addr, m.State, m.Incarnation)
	}
	return nil
}
