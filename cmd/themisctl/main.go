// Command themisctl is a small client CLI against live themisd servers:
// put/get/ls/stat/rm through the POSIX-style client library, under an
// explicit job identity so policy behaviour can be exercised by hand.
//
// Usage:
//
//	themisctl -servers 127.0.0.1:7000 -job demo -user alice -nodes 4 mkdir /data
//	themisctl -servers 127.0.0.1:7000 put /data/x < local.bin
//	themisctl -servers 127.0.0.1:7000 get /data/x > out.bin
//	themisctl -servers 127.0.0.1:7000 ls /data
//	themisctl -servers 127.0.0.1:7000 stat /data/x
//	themisctl -servers 127.0.0.1:7000 rm /data/x
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"themisio/internal/client"
	"themisio/internal/policy"
)

func main() {
	servers := flag.String("servers", "127.0.0.1:7000", "comma-separated server addresses")
	jobID := flag.String("job", "themisctl", "job id embedded in requests")
	user := flag.String("user", "operator", "user id")
	group := flag.String("group", "staff", "group id")
	nodes := flag.Int("nodes", 1, "job size in nodes")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: themisctl [flags] {put|get|ls|stat|rm|mkdir} PATH")
		os.Exit(2)
	}
	cmd, path := args[0], args[1]

	c, err := client.Dial(policy.JobInfo{
		JobID: *jobID, UserID: *user, GroupID: *group, Nodes: *nodes,
	}, strings.Split(*servers, ","))
	if err != nil {
		log.Fatalf("themisctl: %v", err)
	}
	defer c.Close()

	switch cmd {
	case "mkdir":
		err = c.Mkdir(path)
	case "put":
		var data []byte
		data, err = io.ReadAll(os.Stdin)
		if err != nil {
			break
		}
		var fd int
		fd, err = c.Open(path, true)
		if err != nil {
			break
		}
		_, err = c.Write(fd, data)
	case "get":
		var fd int
		fd, err = c.Open(path, false)
		if err != nil {
			break
		}
		buf := make([]byte, 1<<20)
		for {
			n, rerr := c.Read(fd, buf)
			if n > 0 {
				os.Stdout.Write(buf[:n])
			}
			if rerr != nil || n == 0 {
				break
			}
		}
	case "ls":
		var names []string
		names, err = c.Readdir(path)
		for _, n := range names {
			fmt.Println(n)
		}
	case "stat":
		var size int64
		var isDir bool
		size, isDir, err = c.Stat(path)
		if err == nil {
			kind := "file"
			if isDir {
				kind = "dir"
			}
			fmt.Printf("%s\t%s\t%d bytes\n", path, kind, size)
		}
	case "rm":
		err = c.Unlink(path)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		log.Fatalf("themisctl: %s %s: %v", cmd, path, err)
	}
}
