package themisio

import (
	"net"

	"themisio/internal/backing"
	"themisio/internal/bb"
	"themisio/internal/client"
	"themisio/internal/cluster"
	"themisio/internal/core"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/server"
	"themisio/internal/workload"
)

// Re-exported core types: the public API is a thin veneer over the
// internal packages so that examples and downstream users share one
// vocabulary with the implementation.
type (
	// Policy is a sharing policy (primitive or composite).
	Policy = policy.Policy
	// JobInfo is the job metadata embedded in every I/O request.
	JobInfo = policy.JobInfo
	// Scheduler is the pluggable request scheduler interface.
	Scheduler = sched.Scheduler
	// Themis is the statistical token scheduler.
	Themis = core.Themis
	// Client is the live POSIX-style client.
	Client = client.Client
	// Server is the live burst-buffer server.
	Server = server.Server
	// ServerConfig parameterizes a live server.
	ServerConfig = server.Config
	// Cluster is the discrete-event simulated burst buffer.
	Cluster = bb.Cluster
	// ClusterConfig parameterizes a simulated cluster.
	ClusterConfig = bb.Config
	// ClientOptions tunes client striping.
	ClientOptions = client.Options
	// Membership is one server's view of the cluster member set.
	Membership = cluster.Membership
	// Member is a gossiped membership record.
	Member = cluster.Member
	// ClusterNode is a server's fabric endpoint (membership + gossip).
	ClusterNode = cluster.Node
	// BackingStore is the stage-out backing store behind the burst
	// buffer (stage-in at start, asynchronous dirty write-back,
	// failover re-hydration).
	BackingStore = backing.Store
	// ClusterProc is one simulated client process (a closed-loop request
	// stream against the simulated cluster).
	ClusterProc = bb.Proc
	// File is an open handle on a burst-buffer file: an
	// io.ReadWriteSeeker + io.Closer returned by Client.Open.
	File = client.File
)

// Exported error sentinels: every error a Client call returns wraps the
// matching sentinel, so callers branch with errors.Is regardless of the
// retry/repair prefixes the message accumulated on the way up.
var (
	// ErrNotExist reports an operation on a path no server knows.
	ErrNotExist = client.ErrNotExist
	// ErrStaleLayout reports a request that raced a stripe migration;
	// the client retries these itself, so seeing one means the retry
	// budget ran out.
	ErrStaleLayout = client.ErrStaleLayout
	// ErrTornAppend reports a positional append that partially overlaps
	// data already landed — the torn-write guard.
	ErrTornAppend = client.ErrTornAppend
	// ErrParkedFull reports a server whose positional-append reorder
	// buffer is full.
	ErrParkedFull = client.ErrParkedFull
	// ErrCanceled reports a call abandoned because its context was
	// canceled or its deadline passed; the stdlib cause
	// (context.Canceled or context.DeadlineExceeded) is also reachable
	// through errors.Is.
	ErrCanceled = client.ErrCanceled
	// ErrInvalidOptions reports malformed ClientOptions refused by
	// DialStriped before any socket was dialed.
	ErrInvalidOptions = client.ErrInvalidOptions
)

// Predefined policies in the paper's notation.
var (
	FIFO              = policy.FIFO
	JobFair           = policy.JobFair
	UserFair          = policy.UserFair
	SizeFair          = policy.SizeFair
	PriorityFair      = policy.PriorityFair
	UserThenSizeFair  = policy.UserThenSizeFair
	GroupUserSizeFair = policy.GroupUserSizeFair
)

// ParsePolicy parses a policy string such as "size-fair" or
// "group-then-user-then-size-fair".
func ParsePolicy(s string) (Policy, error) { return policy.Parse(s) }

// NewScheduler returns a Themis scheduler enforcing the policy with a
// deterministic token stream.
func NewScheduler(p Policy, seed int64) *Themis { return core.New(p, seed) }

// NewServer creates a live server on the listener.
func NewServer(ln net.Listener, cfg ServerConfig) *Server { return server.New(ln, cfg) }

// Dial connects a client to live servers under the job identity.
func Dial(job JobInfo, servers []string) (*Client, error) { return client.Dial(job, servers) }

// DialStriped connects a client whose files stripe across servers:
// reads and writes fan out in parallel over each file's stripe set, so
// one client's aggregate bandwidth scales with the server count.
func DialStriped(job JobInfo, servers []string, opts ClientOptions) (*Client, error) {
	return client.DialOpts(job, servers, opts)
}

// NewCluster builds a simulated burst-buffer cluster.
func NewCluster(cfg ClusterConfig) *Cluster { return bb.NewCluster(cfg) }

// OpenBackingDir opens (creating if needed) a local-directory backing
// store — the stand-in for the parallel file system behind the burst
// buffer. Pass it in ServerConfig.Backing for stage-out durability.
func OpenBackingDir(dir string) (BackingStore, error) { return backing.OpenDir(dir) }

// WriteStream returns an endless write workload in blockBytes transfers
// — the simplest stream to feed a simulated process.
func WriteStream(blockBytes int64) workload.Stream {
	return workload.IORLoop(sched.OpWrite, blockBytes)
}

// Shares compiles a policy over a job set and returns each job's token
// share — the quickest way to inspect what a policy means.
func Shares(jobs []JobInfo, p Policy) (map[string]float64, error) {
	return policy.Shares(jobs, p)
}

// Calibration constants of the simulated substrate (from the paper's
// measured hardware envelope).
const (
	DirBW    = bb.DefaultDirBW
	DeviceBW = bb.DefaultDeviceBW
	Lambda   = bb.DefaultLambda
)

// ClientOptions sentinels: zero asks for the default; the Auto values
// ask the client to size the knob itself.
const (
	// AutoStripeUnit sizes each created file's stripe unit from the
	// measured bandwidth-delay product.
	AutoStripeUnit = client.AutoStripeUnit
	// DefaultConnsPerServer is the pool size used when
	// ClientOptions.ConnsPerServer is zero.
	DefaultConnsPerServer = client.DefaultConnsPerServer
	// AutoConnsPerServer scales each per-server connection pool with
	// the stripe width.
	AutoConnsPerServer = client.AutoConnsPerServer
)
