// Package themisio is a Go reproduction of "Fine-grained Policy-driven
// I/O Sharing for Burst Buffers" (SC 2023): ThemisIO, a policy-driven
// I/O sharing framework for remote-shared burst buffers built on a
// statistical token design.
//
// The package re-exports the library's main entry points; the
// implementation lives under internal/:
//
//   - internal/core     — the statistical token scheduler (the paper's
//     primary contribution)
//   - internal/policy   — primitive and composite sharing policies and
//     their compilation to token assignments (Equation 1)
//   - internal/token    — transition matrices, chain products, segment
//     sampling
//   - internal/jobtable — job status tables and the λ-interval all-gather
//   - internal/sched    — the scheduler interface plus FIFO, GIFT and TBF
//     baselines
//   - internal/bb       — the discrete-event burst-buffer simulator that
//     regenerates every figure of the paper's evaluation
//   - internal/cluster  — the multi-server fabric: membership
//     (join/leave/drain/fail), gossip-based λ-sync, and failover
//   - internal/fsys, internal/storage, internal/chash — the user-space
//     file system substrate
//   - internal/server, internal/client, internal/transport — the live
//     (socket) server and POSIX-style client, with client-side striping
//   - internal/experiments — one runner per paper table/figure
//
// See README.md for a tour of the repository.
package themisio
