// Package themisio is a Go reproduction of "Fine-grained Policy-driven
// I/O Sharing for Burst Buffers" (SC 2023): ThemisIO, a policy-driven
// I/O sharing framework for remote-shared burst buffers built on a
// statistical token design.
//
// The package re-exports the library's main entry points; the
// implementation lives under internal/:
//
//   - internal/core     — the statistical token scheduler (the paper's
//     primary contribution)
//   - internal/policy   — primitive and composite sharing policies and
//     their compilation to token assignments (Equation 1)
//   - internal/token    — transition matrices, chain products, segment
//     sampling
//   - internal/jobtable — job status tables and the λ-interval
//     synchronization (gossip-disseminated since the cluster fabric)
//   - internal/sched    — the scheduler interface plus FIFO, GIFT and TBF
//     baselines
//   - internal/bb       — the discrete-event burst-buffer simulator that
//     regenerates every figure of the paper's evaluation, with fabric
//     and stage-out mirrors
//   - internal/cluster  — the multi-server fabric: membership
//     (join/leave/drain/fail), gossip-based λ-sync, failover, and the
//     epoch-versioned cluster-wide policy rumor behind live hot-swap
//   - internal/backing  — stage-out durability: the backing-store
//     interface, the policy-governed drain engine, and crash/failover
//     re-hydration
//   - internal/fsys, internal/storage, internal/chash — the user-space
//     file system substrate (shards, extent store, dirty-range maps,
//     consistent-hash placement)
//   - internal/server, internal/client, internal/transport — the live
//     (socket) server and POSIX-style client, with client-side striping
//   - internal/workload — the request streams of the paper's evaluation
//     (IOR runs, write/read cycles, stat storms)
//   - internal/metrics  — binned throughput series and summary statistics
//     behind every measurement, plus the λ-windowed per-entity share
//     ledger (compiled vs measured shares) behind `policy status`
//   - internal/sim      — the discrete-event engine under the simulator
//   - internal/apptrace — the §5 application I/O traces (NAMD, WRF, ...)
//   - internal/experiments — one runner per paper table/figure
//
// See README.md for a tour of the repository and ARCHITECTURE.md for the
// end-to-end walkthrough (request path, cluster fabric, stage-out
// pipeline).
package themisio
